#include "gen/generators.h"

#include "base/strings.h"

namespace oodb::gen {

GeneratedSchema GenerateSchema(schema::Schema* sigma, Rng& rng,
                               const SchemaGenOptions& options) {
  SymbolTable& symbols = sigma->terms().symbols();
  GeneratedSchema sig;
  for (size_t i = 0; i < options.num_classes; ++i) {
    sig.classes.push_back(symbols.Intern(StrCat("C", i)));
  }
  for (size_t i = 0; i < options.num_attrs; ++i) {
    sig.attrs.push_back(symbols.Intern(StrCat("p", i)));
  }
  for (size_t i = 0; i < options.num_constants; ++i) {
    sig.constants.push_back(symbols.Intern(StrCat("k", i)));
  }

  // Acyclic isA hierarchy: a class may specialize an earlier class.
  for (size_t i = 1; i < sig.classes.size(); ++i) {
    if (rng.Bernoulli(options.isa_prob)) {
      (void)sigma->AddIsA(sig.classes[i], sig.classes[rng.Index(i)]);
    }
  }
  for (size_t i = 0; i < options.value_restrictions && !sig.attrs.empty();
       ++i) {
    Symbol cls = rng.Pick(sig.classes);
    Symbol attr = rng.Pick(sig.attrs);
    Symbol range = rng.Pick(sig.classes);
    (void)sigma->AddValueRestriction(cls, attr, range);
    if (rng.Bernoulli(options.necessary_prob)) {
      (void)sigma->AddNecessary(cls, attr);
    }
    if (rng.Bernoulli(options.functional_prob)) {
      (void)sigma->AddFunctional(cls, attr);
    }
  }
  for (Symbol attr : sig.attrs) {
    if (rng.Bernoulli(options.typing_prob)) {
      (void)sigma->AddTyping(attr, rng.Pick(sig.classes),
                             rng.Pick(sig.classes));
    }
  }
  return sig;
}

namespace {

ql::ConceptId GenerateFilter(const GeneratedSchema& sig,
                             ql::TermFactory* terms, Rng& rng,
                             const ConceptGenOptions& options, size_t depth);

ql::PathId GeneratePath(const GeneratedSchema& sig, ql::TermFactory* terms,
                        Rng& rng, const ConceptGenOptions& options,
                        size_t depth) {
  size_t length = 1 + rng.Index(options.max_path_length);
  std::vector<ql::Restriction> steps;
  for (size_t i = 0; i < length; ++i) {
    ql::Attr attr{rng.Pick(sig.attrs),
                  rng.Bernoulli(options.inverse_prob)};
    steps.push_back(ql::Restriction{
        attr, GenerateFilter(sig, terms, rng, options, depth)});
  }
  return terms->MakePath(std::move(steps));
}

ql::ConceptId GenerateFilter(const GeneratedSchema& sig,
                             ql::TermFactory* terms, Rng& rng,
                             const ConceptGenOptions& options, size_t depth) {
  if (rng.Bernoulli(options.top_filter_prob)) return terms->Top();
  if (!sig.constants.empty() && rng.Bernoulli(options.singleton_prob)) {
    return terms->Singleton(rng.Pick(sig.constants));
  }
  if (depth < options.max_filter_depth && rng.Bernoulli(0.3)) {
    // A nested existential filter.
    return terms->Exists(GeneratePath(sig, terms, rng, options, depth + 1));
  }
  return terms->Primitive(rng.Pick(sig.classes));
}

}  // namespace

ql::ConceptId GenerateConcept(const GeneratedSchema& sig,
                              ql::TermFactory* terms, Rng& rng,
                              const ConceptGenOptions& options) {
  size_t conjuncts = 1 + rng.Index(options.max_conjuncts);
  std::vector<ql::ConceptId> parts;
  for (size_t i = 0; i < conjuncts; ++i) {
    switch (rng.Index(3)) {
      case 0:
        parts.push_back(terms->Primitive(rng.Pick(sig.classes)));
        break;
      case 1: {
        ql::PathId p = GeneratePath(sig, terms, rng, options, 0);
        parts.push_back(rng.Bernoulli(options.agree_prob) ? terms->Agree(p)
                                                          : terms->Exists(p));
        break;
      }
      default: {
        ql::PathId p = GeneratePath(sig, terms, rng, options, 0);
        parts.push_back(terms->Exists(p));
        break;
      }
    }
  }
  return terms->AndAll(parts);
}

namespace {

// One random weakening step. Always returns a concept with C ⊑_Σ result.
ql::ConceptId WeakenOnce(const schema::Schema& sigma, ql::TermFactory* terms,
                         ql::ConceptId c, Rng& rng) {
  const ql::ConceptNode n = terms->node(c);
  switch (n.kind) {
    case ql::ConceptKind::kTop:
      return c;
    case ql::ConceptKind::kPrimitive: {
      const auto& supers = sigma.SuperPrimitives(n.sym);
      if (!supers.empty() && rng.Bernoulli(0.8)) {
        return terms->Primitive(rng.Pick(supers));
      }
      return rng.Bernoulli(0.3) ? terms->Top() : c;
    }
    case ql::ConceptKind::kSingleton:
      return rng.Bernoulli(0.5) ? terms->Top() : c;
    case ql::ConceptKind::kAnd: {
      switch (rng.Index(3)) {
        case 0:
          return rng.Bernoulli(0.5) ? n.lhs : n.rhs;  // drop a conjunct
        case 1:
          return terms->And(WeakenOnce(sigma, terms, n.lhs, rng), n.rhs);
        default:
          return terms->And(n.lhs, WeakenOnce(sigma, terms, n.rhs, rng));
      }
    }
    case ql::ConceptKind::kExists:
    case ql::ConceptKind::kAgree: {
      const bool is_agree = n.kind == ql::ConceptKind::kAgree;
      std::vector<ql::Restriction> steps = terms->path(n.path);
      if (steps.empty()) return c;
      if (is_agree && rng.Bernoulli(0.4)) {
        return terms->Exists(n.path);  // ∃p ≐ ε ⊑ ∃p
      }
      // Truncating an agreement's path is NOT sound (the loop is lost),
      // so truncation applies to plain existentials only.
      if (!is_agree && steps.size() > 1 && rng.Bernoulli(0.4)) {
        steps.resize(1 + rng.Index(steps.size() - 1));
        return terms->Exists(terms->MakePath(std::move(steps)));
      }
      // Weaken one filter.
      size_t i = rng.Index(steps.size());
      steps[i].filter = rng.Bernoulli(0.5)
                            ? terms->Top()
                            : WeakenOnce(sigma, terms, steps[i].filter, rng);
      ql::PathId p = terms->MakePath(std::move(steps));
      return is_agree ? terms->Agree(p) : terms->Exists(p);
    }
    case ql::ConceptKind::kAll:
    case ql::ConceptKind::kAtMostOne:
      return c;  // SL-only kinds are never generated here
  }
  return c;
}

}  // namespace

ql::ConceptId WeakenConcept(const schema::Schema& sigma,
                            ql::TermFactory* terms, ql::ConceptId c,
                            Rng& rng, int steps) {
  ql::ConceptId cur = c;
  for (int i = 0; i < steps; ++i) {
    cur = WeakenOnce(sigma, terms, cur, rng);
  }
  return cur;
}

}  // namespace oodb::gen
