#include "service/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "base/sync.h"

namespace oodb::service {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    base::MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_ready_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    base::MutexLock lock(&mu_);
    if (draining_ || shutdown_) return false;
    queue_.push(std::move(task));
  }
  work_ready_.NotifyOne();
  return true;
}

void ThreadPool::Wait() {
  base::MutexLock lock(&mu_);
  while (!(queue_.empty() && in_flight_ == 0)) idle_.Wait(mu_);
}

void ThreadPool::Drain() {
  {
    base::MutexLock lock(&mu_);
    draining_ = true;
  }
  Wait();
}

size_t ThreadPool::pending() const {
  base::MutexLock lock(&mu_);
  return queue_.size() + in_flight_;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  auto next = std::make_shared<std::atomic<size_t>>(0);
  const size_t tasks = std::min(n, workers_.size());
  for (size_t t = 0; t < tasks; ++t) {
    Submit([next, n, &body] {
      for (;;) {
        const size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        body(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      base::MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) work_ready_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown and drained
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      base::MutexLock lock(&mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.NotifyAll();
    }
  }
}

}  // namespace oodb::service
