#include "base/symbol.h"

#include <cassert>

#include "base/strings.h"
#include "base/sync.h"

namespace oodb {

SymbolTable::SymbolTable() {
  names_.push_back(std::string("<invalid>"));  // id 0 is the sentinel.
}

Symbol SymbolTable::Intern(std::string_view name) {
  base::MutexLock lock(&mu_);
  auto it = index_.find(name);
  if (it != index_.end()) return Symbol(it->second);
  uint32_t id = static_cast<uint32_t>(names_.size());
  size_t slot = names_.push_back(std::string(name));
  index_.emplace(std::string_view(names_[slot]), id);
  return Symbol(id);
}

Symbol SymbolTable::Find(std::string_view name) const {
  base::MutexLock lock(&mu_);
  auto it = index_.find(name);
  if (it == index_.end()) return Symbol();
  return Symbol(it->second);
}

const std::string& SymbolTable::Name(Symbol s) const {
  assert(s.id() < names_.size());
  return names_[s.id()];
}

Symbol SymbolTable::Fresh(std::string_view prefix) {
  base::MutexLock lock(&mu_);
  for (;;) {
    std::string candidate = StrCat(prefix, "#", ++fresh_counter_);
    if (index_.find(candidate) != index_.end()) continue;
    uint32_t id = static_cast<uint32_t>(names_.size());
    size_t slot = names_.push_back(std::move(candidate));
    index_.emplace(std::string_view(names_[slot]), id);
    return Symbol(id);
  }
}

}  // namespace oodb
