// Public API of the paper's core result: deciding C ⊑_Σ D in polynomial
// time (Theorems 4.7 and 4.9).
#ifndef OODB_CALCULUS_SUBSUMPTION_H_
#define OODB_CALCULUS_SUBSUMPTION_H_

#include <vector>

#include "base/status.h"
#include "calculus/engine.h"
#include "calculus/memo_cache.h"
#include "calculus/trace.h"
#include "schema/schema.h"

namespace oodb::calculus {

// Result of a subsumption check, with run statistics and (optionally) the
// completion trace for Figure-11 style reproduction.
struct SubsumptionOutcome {
  bool subsumed = false;
  // True iff subsumption holds because C is Σ-unsatisfiable (the clash
  // branch of Theorem 4.7).
  bool via_clash = false;
  RunStats stats;
  std::vector<TraceEvent> trace;
};

// Decides Σ-subsumption of QL concepts. Stateless between calls; one
// checker per (schema, factory) pair. Subsumption checks are sound but —
// by design — complete only for the structural fragment: non-structural
// query parts never reach this layer (paper Sect. 3).
struct CheckerOptions {
  bool record_trace = false;
  // Memoize (C, D) → verdict across calls. Sound because Σ and the term
  // factory are append-only for the checker's lifetime and concept ids
  // are stable. Catalog scans and classification repeat many pairs.
  bool memoize = true;
  // Entry budget for the sharded memo cache (see memo_cache.h).
  size_t memo_capacity = size_t{1} << 20;
  EngineOptions engine;
};

// Thread-safe: any number of threads may call the const check methods on
// one shared checker concurrently. Each call runs a private
// CompletionEngine; the shared pieces — Σ (read-only), the term factory
// (internally synchronized) and the sharded memo cache — all tolerate
// concurrent use. See docs/optimizer.md, "Threading model".
class SubsumptionChecker {
 public:
  using Options = CheckerOptions;

  explicit SubsumptionChecker(const schema::Schema& sigma,
                              Options options = Options())
      : sigma_(sigma), options_(options), cache_(options.memo_capacity) {}

  // Whether C ⊑_Σ D. Fails on non-QL inputs or resource caps.
  Result<bool> Subsumes(ql::ConceptId c, ql::ConceptId d) const;

  // Decides C ⊑_Σ Dᵢ for every Dᵢ with a SINGLE completion run (the
  // catalog-scan fast path; see CompletionEngine::RunBatch for why this
  // is sound). Returns one verdict per input, in order.
  Result<std::vector<bool>> SubsumesBatch(
      ql::ConceptId c, const std::vector<ql::ConceptId>& ds) const;

  // Subsumes with statistics and optional trace.
  Result<SubsumptionOutcome> SubsumesDetailed(ql::ConceptId c,
                                              ql::ConceptId d) const;

  // Whether C is Σ-satisfiable (no clash in the completion of {x:C} : ∅).
  Result<bool> Satisfiable(ql::ConceptId c) const;

  // Whether C ≡_Σ D (mutual subsumption).
  Result<bool> Equivalent(ql::ConceptId c, ql::ConceptId d) const;

  const schema::Schema& sigma() const { return sigma_; }

  // Memoization statistics (0 when memoize is off).
  size_t cache_hits() const { return cache_.Stats().hits; }
  size_t cache_size() const { return cache_.size(); }
  MemoCacheStats cache_stats() const { return cache_.Stats(); }

 private:
  const schema::Schema& sigma_;
  Options options_;
  mutable ShardedMemoCache cache_;
};

}  // namespace oodb::calculus

#endif  // OODB_CALCULUS_SUBSUMPTION_H_
