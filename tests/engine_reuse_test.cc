// Engine scratch reuse: CompletionEngine::Reset() must return a used
// engine to a state indistinguishable (verdict-wise) from a freshly
// constructed one, and the SubsumptionChecker's engine pool must
// actually recycle engines without changing any verdict.
#include <cstdio>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "calculus/engine.h"
#include "calculus/subsumption.h"
#include "gen/generators.h"
#include "schema/schema.h"

namespace oodb::calculus {
namespace {

TEST(EngineReuse, OneEngineMatchesFreshEnginesAcrossRuns) {
  Rng rng(424242);
  SymbolTable symbols;
  ql::TermFactory f(&symbols);
  schema::Schema sigma(&f);
  gen::GeneratedSchema sig = gen::GenerateSchema(&sigma, rng);

  // A mix of subsumed (weakened) and unrelated pairs, run back to back
  // through ONE reused engine vs a fresh engine per pair.
  CompletionEngine reused(sigma);
  int subsumed = 0;
  for (int round = 0; round < 60; ++round) {
    ql::ConceptId c = gen::GenerateConcept(sig, &f, rng);
    ql::ConceptId d = (round % 2 == 0)
                          ? gen::WeakenConcept(sigma, &f, c, rng, 2)
                          : gen::GenerateConcept(sig, &f, rng);

    CompletionEngine fresh(sigma);
    Status fresh_status = fresh.Run(c, d);
    Status reused_status = reused.Run(c, d);
    ASSERT_EQ(fresh_status.ok(), reused_status.ok()) << "round " << round;
    if (!fresh_status.ok()) continue;

    EXPECT_EQ(fresh.clash(), reused.clash()) << "round " << round;
    EXPECT_EQ(fresh.GoalFactHolds(), reused.GoalFactHolds())
        << "round " << round;
    subsumed += (fresh.clash() || fresh.GoalFactHolds()) ? 1 : 0;
  }
  EXPECT_GT(subsumed, 0);  // the sweep saw real positives
}

TEST(EngineReuse, OneEngineMatchesFreshEnginesAcrossBatches) {
  Rng rng(31337);
  SymbolTable symbols;
  ql::TermFactory f(&symbols);
  schema::Schema sigma(&f);
  gen::GeneratedSchema sig = gen::GenerateSchema(&sigma, rng);

  CompletionEngine reused(sigma);
  for (int round = 0; round < 10; ++round) {
    ql::ConceptId c = gen::GenerateConcept(sig, &f, rng);
    std::vector<ql::ConceptId> ds;
    for (int i = 0; i < 8; ++i) {
      ds.push_back(i % 2 == 0 ? gen::WeakenConcept(sigma, &f, c, rng, 1)
                              : gen::GenerateConcept(sig, &f, rng));
    }

    CompletionEngine fresh(sigma);
    Status fresh_status = fresh.RunBatch(c, ds);
    Status reused_status = reused.RunBatch(c, ds);
    ASSERT_EQ(fresh_status.ok(), reused_status.ok()) << "round " << round;
    if (!fresh_status.ok()) continue;

    ASSERT_EQ(fresh.clash(), reused.clash()) << "round " << round;
    for (ql::ConceptId d : ds) {
      EXPECT_EQ(fresh.GoalFactHoldsFor(d), reused.GoalFactHoldsFor(d))
          << "round " << round;
    }
  }
}

TEST(EngineReuse, ResetClearsResultsImmediately) {
  SymbolTable symbols;
  ql::TermFactory f(&symbols);
  schema::Schema sigma(&f);
  ASSERT_TRUE(sigma.AddFunctional(symbols.Intern("A"), symbols.Intern("p"))
                  .ok());
  // Force a clash, then Reset and confirm the engine reports none.
  ql::ConceptId clashing = f.AndAll(
      {f.Primitive("A"),
       f.Exists(f.Step(ql::Attr{symbols.Intern("p"), false},
                       f.Singleton("one"))),
       f.Exists(f.Step(ql::Attr{symbols.Intern("p"), false},
                       f.Singleton("two")))});
  CompletionEngine engine(sigma);
  ASSERT_TRUE(engine.Run(clashing, f.Primitive("A")).ok());
  ASSERT_TRUE(engine.clash());
  engine.Reset();
  EXPECT_FALSE(engine.clash());
  EXPECT_TRUE(engine.clash_reason().empty());
  EXPECT_EQ(engine.facts().size(), 0u);
  EXPECT_EQ(engine.goals().size(), 0u);
}

TEST(EngineReuse, CheckerPoolRecyclesEnginesWithIdenticalVerdicts) {
  Rng rng(90210);
  SymbolTable symbols;
  ql::TermFactory f(&symbols);
  schema::Schema sigma(&f);
  gen::GeneratedSchema sig = gen::GenerateSchema(&sigma, rng);

  // Memoization and the pre-filter both avoid engine runs, which would
  // starve the pool; turn them off so every Subsumes call leases an
  // engine and reuse is actually exercised.
  CheckerOptions options;
  options.memoize = false;
  options.prefilter = false;
  SubsumptionChecker pooled(sigma, options);
  SubsumptionChecker reference(sigma, options);

  for (int round = 0; round < 40; ++round) {
    ql::ConceptId c = gen::GenerateConcept(sig, &f, rng);
    ql::ConceptId d = (round % 2 == 0)
                          ? gen::WeakenConcept(sigma, &f, c, rng, 1)
                          : gen::GenerateConcept(sig, &f, rng);
    auto want = reference.Subsumes(c, d);
    auto got = pooled.Subsumes(c, d);
    ASSERT_EQ(want.ok(), got.ok()) << "round " << round;
    if (want.ok()) EXPECT_EQ(*want, *got) << "round " << round;
  }

  const CheckerPerfStats perf = pooled.perf_stats();
  std::printf("engine pool: %llu acquires, %llu reuses\n",
              (unsigned long long)perf.pool_acquires,
              (unsigned long long)perf.pool_reuses);
  EXPECT_GT(perf.pool_acquires, 0u);
  EXPECT_GT(perf.pool_reuses, 0u);  // sequential calls must hit the pool
  EXPECT_EQ(perf.engine_runs, perf.pool_acquires);
}

}  // namespace
}  // namespace oodb::calculus
