// Experiment E18: observability overhead.
//
// Runs the E16 classification workload (hierarchy-rich synthetic
// catalog, enhanced traversal, fresh checker per iteration so memo
// state never carries over) twice: once with the observability layer
// enabled (the default — engine-run histograms, per-rule counters) and
// once with obs::SetEnabled(false). Reports min-of-repeats wall time
// for each mode plus microbenchmarks of the individual instruments.
//
// Writes BENCH_obs.json always, and exits non-zero if the measured
// overhead of enabled-vs-disabled exceeds the 3% budget (CI runs
// `bench_obs --quick` as a Release-mode gate).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/strings.h"
#include "bench_util.h"
#include "calculus/services.h"
#include "calculus/subsumption.h"
#include "gen/generators.h"
#include "obs/metrics.h"
#include "schema/schema.h"

int main(int argc, char** argv) {
  using namespace oodb;

  bool quick = false;
  std::string out_path = "BENCH_obs.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  bench::Section("E18: observability overhead on the E16 workload");

  Rng rng(20260806);
  SymbolTable symbols;
  ql::TermFactory f(&symbols);
  schema::Schema sigma(&f);
  gen::SchemaGenOptions schema_options;
  schema_options.num_classes = 14;
  schema_options.num_attrs = 7;
  schema_options.value_restrictions = 12;
  gen::GeneratedSchema sig = gen::GenerateSchema(&sigma, rng, schema_options);

  const size_t kSeeds = quick ? 8 : 24;
  const size_t kChain = quick ? 3 : 5;
  const size_t kNoise = quick ? 8 : 20;
  std::vector<ql::ConceptId> concepts;
  for (size_t s = 0; s < kSeeds; ++s) {
    ql::ConceptId c = gen::GenerateConcept(sig, &f, rng);
    concepts.push_back(c);
    for (size_t k = 0; k < kChain; ++k) {
      c = gen::WeakenConcept(sigma, &f, c, rng, 1);
      concepts.push_back(c);
    }
  }
  for (size_t i = 0; i < kNoise; ++i) {
    concepts.push_back(gen::GenerateConcept(sig, &f, rng));
  }
  std::vector<Symbol> names;
  names.reserve(concepts.size());
  for (size_t i = 0; i < concepts.size(); ++i) {
    names.push_back(symbols.Intern(StrCat("N", i)));
  }
  std::printf("  catalog: %zu concepts%s\n\n", concepts.size(),
              quick ? " [quick]" : "");

  // One full classification on a cold checker; returns elapsed ms.
  auto classify_once = [&]() -> double {
    calculus::SubsumptionChecker checker(sigma);
    calculus::Classifier classifier(checker);
    for (size_t i = 0; i < concepts.size(); ++i) {
      if (auto s = classifier.Add(names[i], concepts[i]); !s.ok()) {
        std::fprintf(stderr, "add failed: %s\n", s.ToString().c_str());
        std::exit(1);
      }
    }
    double ms = 0;
    Status status = Status::Ok();
    ms = bench::TimeUs([&] { status = classifier.Classify(); }) / 1000.0;
    if (!status.ok()) {
      std::fprintf(stderr, "classify failed: %s\n", status.ToString().c_str());
      std::exit(1);
    }
    return ms;
  };

  // Min-of-repeats with the two modes interleaved (off, on, off, on,
  // ...): machine-load drift over the measurement window hits both
  // modes equally instead of masquerading as instrumentation overhead,
  // and the minimum damps scheduler noise on shared runners.
  const int kRepeats = quick ? 12 : 20;
  obs::SetEnabled(false);
  classify_once();  // untimed warm-up: allocator, caches
  obs::SetEnabled(true);
  classify_once();
  double off_ms = 0, on_ms = 0;
  for (int r = 0; r < kRepeats; ++r) {
    obs::SetEnabled(false);
    const double off = classify_once();
    if (r == 0 || off < off_ms) off_ms = off;
    obs::SetEnabled(true);
    const double on = classify_once();
    if (r == 0 || on < on_ms) on_ms = on;
  }
  const double overhead_pct =
      off_ms > 0 ? (on_ms - off_ms) / off_ms * 100.0 : 0.0;

  bench::Table table({"mode", "classify min (ms)"});
  table.AddRow({"obs disabled", bench::Fmt(off_ms, 3)});
  table.AddRow({"obs enabled", bench::Fmt(on_ms, 3)});
  table.Print();
  std::printf("\n  overhead: %+.2f%% (budget 3%%)\n\n", overhead_pct);

  // Microbenchmarks: cost per instrument operation in nanoseconds.
  obs::Histogram hist;
  obs::Counter counter;
  const size_t kOps = 2000000;
  obs::SetEnabled(true);
  const double hist_on_ns = bench::TimeUs([&] {
                              for (size_t i = 0; i < kOps; ++i) {
                                hist.Record(i & 0xfffff);
                              }
                            }) *
                            1000.0 / kOps;
  const double counter_on_ns = bench::TimeUs([&] {
                                 for (size_t i = 0; i < kOps; ++i) {
                                   counter.Add(1);
                                 }
                               }) *
                               1000.0 / kOps;
  obs::SetEnabled(false);
  const double hist_off_ns = bench::TimeUs([&] {
                               for (size_t i = 0; i < kOps; ++i) {
                                 hist.Record(i & 0xfffff);
                               }
                             }) *
                             1000.0 / kOps;
  obs::SetEnabled(true);

  std::printf("  instrument cost: histogram record %.1f ns, counter add"
              " %.1f ns, disabled record %.1f ns\n",
              hist_on_ns, counter_on_ns, hist_off_ns);

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"obs_overhead\",\n"
               "  \"quick\": %s,\n"
               "  \"workload\": \"classify_enhanced\",\n"
               "  \"catalog_concepts\": %zu,\n"
               "  \"repeats\": %d,\n"
               "  \"classify_off_ms\": %.3f,\n"
               "  \"classify_on_ms\": %.3f,\n"
               "  \"overhead_pct\": %.2f,\n"
               "  \"budget_pct\": 3.0,\n"
               "  \"histogram_record_ns\": %.1f,\n"
               "  \"counter_add_ns\": %.1f,\n"
               "  \"disabled_record_ns\": %.1f\n"
               "}\n",
               quick ? "true" : "false", concepts.size(), kRepeats, off_ms,
               on_ms, overhead_pct, hist_on_ns, counter_on_ns, hist_off_ns);
  std::fclose(out);
  std::printf("  wrote %s\n", out_path.c_str());

  if (overhead_pct > 3.0) {
    std::fprintf(stderr, "FAIL: observability overhead %.2f%% > 3%%\n",
                 overhead_pct);
    return 1;
  }
  std::printf("  PASS: overhead within budget\n");
  return 0;
}
