#include "ql/term_factory.h"

#include <cassert>

#include "base/sync.h"

namespace oodb::ql {

TermFactory::TermFactory(SymbolTable* symbols) : symbols_(symbols) {
  assert(symbols != nullptr);
  concepts_.push_back(ConceptNode{});  // id 0: invalid sentinel.
  sizes_.push_back(0);
  paths_.push_back({});  // id 0: the empty path ε.
  path_index_.emplace(std::vector<Restriction>{}, kEmptyPath);
  ConceptNode top;
  top.kind = ConceptKind::kTop;
  top_ = Intern(top);
}

size_t TermFactory::ComputeSizeLocked(const ConceptNode& node) const {
  switch (node.kind) {
    case ConceptKind::kTop:
    case ConceptKind::kPrimitive:
    case ConceptKind::kSingleton:
    case ConceptKind::kAtMostOne:
      return 1;
    case ConceptKind::kAnd:
      // Children are interned before their parents, so their sizes are
      // already stored.
      return sizes_[node.lhs] + sizes_[node.rhs];
    case ConceptKind::kAll:
      return 2;
    case ConceptKind::kExists:
    case ConceptKind::kAgree: {
      size_t size = 1;
      for (const Restriction& r : paths_[node.path]) {
        size += 1 + sizes_[r.filter];
      }
      return size;
    }
  }
  return 1;
}

ConceptId TermFactory::InternLocked(const ConceptNode& node) {
  auto it = concept_index_.find(node);
  if (it != concept_index_.end()) return it->second;
  ConceptId id = static_cast<ConceptId>(concepts_.size());
  sizes_.push_back(ComputeSizeLocked(node));
  concepts_.push_back(node);
  concept_index_.emplace(node, id);
  return id;
}

ConceptId TermFactory::Intern(const ConceptNode& node) {
  base::MutexLock lock(&mu_);
  return InternLocked(node);
}

ConceptId TermFactory::Primitive(Symbol name) {
  assert(name.valid());
  ConceptNode n;
  n.kind = ConceptKind::kPrimitive;
  n.sym = name;
  return Intern(n);
}

ConceptId TermFactory::Primitive(std::string_view name) {
  return Primitive(symbols_->Intern(name));
}

ConceptId TermFactory::Singleton(Symbol constant) {
  assert(constant.valid());
  ConceptNode n;
  n.kind = ConceptKind::kSingleton;
  n.sym = constant;
  return Intern(n);
}

ConceptId TermFactory::Singleton(std::string_view constant) {
  return Singleton(symbols_->Intern(constant));
}

ConceptId TermFactory::And(ConceptId lhs, ConceptId rhs) {
  assert(lhs != kInvalidConcept && rhs != kInvalidConcept);
  if (lhs == top_) return rhs;
  if (rhs == top_) return lhs;
  if (lhs == rhs) return lhs;
  ConceptNode n;
  n.kind = ConceptKind::kAnd;
  n.lhs = lhs;
  n.rhs = rhs;
  return Intern(n);
}

ConceptId TermFactory::AndAll(const std::vector<ConceptId>& conjuncts) {
  if (conjuncts.empty()) return top_;
  ConceptId acc = conjuncts.back();
  for (size_t i = conjuncts.size() - 1; i-- > 0;) {
    acc = And(conjuncts[i], acc);
  }
  return acc;
}

ConceptId TermFactory::Exists(PathId path) {
  ConceptNode n;
  n.kind = ConceptKind::kExists;
  n.path = path;
  return Intern(n);
}

ConceptId TermFactory::ExistsAttr(Attr attr) {
  return Exists(Step(attr, top_));
}

ConceptId TermFactory::Agree(PathId path) {
  ConceptNode n;
  n.kind = ConceptKind::kAgree;
  n.path = path;
  return Intern(n);
}

ConceptId TermFactory::AgreePair(PathId p, PathId q) {
  if (q == kEmptyPath) return Agree(p);
  if (p == kEmptyPath) return Agree(q);
  auto [q_inv, entry] = InvertPath(q);
  // Strengthen the last filter of p with q's entry filter, so that the
  // common filler satisfies both paths' final restrictions.
  std::vector<Restriction> pr = path(p);
  pr.back().filter = And(pr.back().filter, entry);
  return Agree(Concat(MakePath(std::move(pr)), q_inv));
}

ConceptId TermFactory::All(Attr attr, ConceptId filler) {
  assert(filler != kInvalidConcept);
  ConceptNode n;
  n.kind = ConceptKind::kAll;
  n.attr = attr;
  n.lhs = filler;
  return Intern(n);
}

ConceptId TermFactory::AtMostOne(Attr attr) {
  ConceptNode n;
  n.kind = ConceptKind::kAtMostOne;
  n.attr = attr;
  return Intern(n);
}

PathId TermFactory::InternPathLocked(std::vector<Restriction> restrictions) {
  auto it = path_index_.find(restrictions);
  if (it != path_index_.end()) return it->second;
  PathId id = static_cast<PathId>(paths_.size());
  paths_.push_back(restrictions);
  path_index_.emplace(std::move(restrictions), id);
  return id;
}

PathId TermFactory::MakePath(std::vector<Restriction> restrictions) {
  base::MutexLock lock(&mu_);
  return InternPathLocked(std::move(restrictions));
}

PathId TermFactory::Step(Attr attr, ConceptId filter) {
  return MakePath({Restriction{attr, filter}});
}

PathId TermFactory::Cons(const Restriction& head, PathId tail) {
  std::vector<Restriction> p;
  p.reserve(path(tail).size() + 1);
  p.push_back(head);
  const auto& t = path(tail);
  p.insert(p.end(), t.begin(), t.end());
  return MakePath(std::move(p));
}

PathId TermFactory::Concat(PathId p, PathId q) {
  if (p == kEmptyPath) return q;
  if (q == kEmptyPath) return p;
  std::vector<Restriction> out = path(p);
  const auto& qr = path(q);
  out.insert(out.end(), qr.begin(), qr.end());
  return MakePath(std::move(out));
}

PathId TermFactory::Suffix(PathId p, size_t from) {
  assert(from <= path(p).size());
  if (from == 0) return p;
  if (from == 1) {
    // The calculus peels paths one restriction at a time; memoize the
    // common case so repeated completions don't rebuild the tail vector.
    base::MutexLock lock(&mu_);
    auto it = tail_cache_.find(p);
    if (it != tail_cache_.end()) return it->second;
    const auto& pr = paths_[p];
    PathId tail =
        InternPathLocked(std::vector<Restriction>(pr.begin() + 1, pr.end()));
    tail_cache_.emplace(p, tail);
    return tail;
  }
  const auto& pr = path(p);
  return MakePath(std::vector<Restriction>(pr.begin() + from, pr.end()));
}

std::pair<PathId, ConceptId> TermFactory::InvertPath(PathId q) {
  const std::vector<Restriction>& qr = path(q);
  assert(!qr.empty() && "cannot invert the empty path");
  std::vector<Restriction> inv;
  inv.reserve(qr.size());
  for (size_t i = qr.size(); i-- > 0;) {
    // Step i (attribute S_{i+1}) reversed carries the filter of the
    // *previous* node on the original path, D_i, or ⊤ at the start.
    ConceptId filter = (i == 0) ? Top() : qr[i - 1].filter;
    inv.push_back(Restriction{qr[i].attr.Inverse(), filter});
  }
  ConceptId entry = qr.back().filter;
  return {MakePath(std::move(inv)), entry};
}

size_t TermFactory::ConceptSize(ConceptId id) const {
  assert(id != kInvalidConcept && id < concepts_.size());
  return sizes_[id];
}

std::vector<ConceptId> TermFactory::Subconcepts(ConceptId id) const {
  std::vector<ConceptId> out;
  std::vector<ConceptId> stack = {id};
  std::unordered_map<ConceptId, bool> seen;
  while (!stack.empty()) {
    ConceptId cur = stack.back();
    stack.pop_back();
    if (seen[cur]) continue;
    seen[cur] = true;
    out.push_back(cur);
    const ConceptNode& n = concepts_[cur];
    switch (n.kind) {
      case ConceptKind::kAnd:
        stack.push_back(n.lhs);
        stack.push_back(n.rhs);
        break;
      case ConceptKind::kAll:
        stack.push_back(n.lhs);
        break;
      case ConceptKind::kExists:
      case ConceptKind::kAgree:
        for (const Restriction& r : paths_[n.path]) {
          stack.push_back(r.filter);
        }
        break;
      default:
        break;
    }
  }
  return out;
}

}  // namespace oodb::ql
