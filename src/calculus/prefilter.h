// Structural pre-filter for subsumption checks: a cheap NECESSARY
// condition for C ⊑_Σ D, tested before any completion engine is built.
//
// The idea follows the told-information pruning of classic DL
// classifiers (CLASSIC's structural normalization, Gottlob et al.'s
// syntactic covers for candidate rewritings): almost every pair in a
// catalog scan is a non-subsumption that can be refuted from signatures
// alone. Per concept we compute, memoized in a side table:
//
//   * query signature of C — an OVER-approximation of everything a
//     completion of {x:C} can ever derive: the Σ-upward closure of the
//     primitive names mentioned anywhere in C (closed under S1 isA
//     edges, S2 value-restriction ranges, S3/S6 typing domains/ranges
//     and S5 necessary attributes), the set of attribute names that can
//     ever label an edge, and the constants mentioned;
//   * target signature of D — an UNDER-approximation of what x:D needs:
//     the primitive top-level conjuncts, the first-step attributes of
//     its top-level ∃p / ∃p≐ε conjuncts, and every constant mentioned.
//
// If any required set is not contained in the corresponding derivable
// set, C ⊑_Σ D cannot hold via the goal branch of Theorem 4.7 — and the
// clash branch is excluded by construction: a clash needs two distinct
// constants in the completion of C (rules D3/S4 are the only clash
// sites, both need two constant individuals, and constants only enter F
// through C's own singletons), so the filter abstains whenever C
// mentions more than one constant. It also abstains on non-QL input so
// the engine's validation errors are preserved. Soundness (no false
// rejection) is pinned by tests/prefilter_soundness_test.cc.
#ifndef OODB_CALCULUS_PREFILTER_H_
#define OODB_CALCULUS_PREFILTER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/symbol.h"
#include "base/sync.h"
#include "ql/term.h"
#include "ql/term_factory.h"
#include "schema/schema.h"

namespace oodb::calculus {

// Dense bitset over symbol ids. Symbols are small (interned densely per
// SymbolTable), so a word vector beats hash sets for the subset tests
// the filter runs on every pair.
class SymbolBitset {
 public:
  void Set(uint32_t id) {
    size_t word = id >> 6;
    if (word >= words_.size()) words_.resize(word + 1, 0);
    words_[word] |= uint64_t{1} << (id & 63);
  }
  void Set(Symbol s) { Set(s.id()); }

  bool Test(uint32_t id) const {
    size_t word = id >> 6;
    return word < words_.size() &&
           (words_[word] >> (id & 63)) & uint64_t{1};
  }
  bool Test(Symbol s) const { return Test(s.id()); }

  // Whether every bit of *this is also set in `other`.
  bool SubsetOf(const SymbolBitset& other) const {
    for (size_t i = 0; i < words_.size(); ++i) {
      uint64_t w = words_[i];
      if (w == 0) continue;
      if (i >= other.words_.size() || (w & ~other.words_[i]) != 0) {
        return false;
      }
    }
    return true;
  }

  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

 private:
  std::vector<uint64_t> words_;
};

// One memoized per-concept signature (see file comment for the two
// readings). Immutable after construction; shared across threads.
struct ConceptSignature {
  // False when the concept contains SL-only constructs (∀P.A, (≤1 P)):
  // the filter makes no claim and the engine reports the proper error.
  bool filterable = false;
  SymbolBitset prims;      // query: derivable closure / target: required
  SymbolBitset attrs;      // query: available edges / target: first steps
  SymbolBitset constants;  // mentioned constants (both readings)
  // Query side only: distinct constants mentioned (clash guard).
  uint32_t num_constants = 0;
};

enum class PreFilterVerdict : uint8_t {
  kReject,   // C ⊑_Σ D is impossible; no engine run needed
  kUnknown,  // the filter cannot decide; run the completion
};

// Thread-safe signature index + pair test. One instance per checker;
// signatures are computed lazily and cached forever (concept ids are
// stable for the lifetime of the term factory).
class StructuralPreFilter {
 public:
  explicit StructuralPreFilter(const schema::Schema& sigma)
      : sigma_(sigma) {}

  StructuralPreFilter(const StructuralPreFilter&) = delete;
  StructuralPreFilter& operator=(const StructuralPreFilter&) = delete;

  // Necessary-condition test for C ⊑_Σ D (never rejects a true
  // subsumption; see the class comment for the argument).
  PreFilterVerdict Check(ql::ConceptId c, ql::ConceptId d) const;

  // The memoized signatures (exposed for tests and diagnostics).
  const ConceptSignature& QuerySignature(ql::ConceptId c) const;
  const ConceptSignature& TargetSignature(ql::ConceptId d) const;

 private:
  using SignatureMap =
      std::unordered_map<ql::ConceptId,
                         std::unique_ptr<const ConceptSignature>>;

  const ConceptSignature& Memoize(SignatureMap* map, ql::ConceptId id,
                                  bool query_side) const;
  ConceptSignature ComputeQuerySignature(ql::ConceptId c) const;
  ConceptSignature ComputeTargetSignature(ql::ConceptId d) const;

  const schema::Schema& sigma_;
  // Signatures are immutable once inserted and stored behind stable
  // pointers, so the lock is held only for map lookup/insert — never
  // across a computation. A racing duplicate compute inserts an equal
  // value and one copy is dropped.
  mutable base::Mutex mu_;
  mutable SignatureMap query_sigs_ GUARDED_BY(mu_);
  mutable SignatureMap target_sigs_ GUARDED_BY(mu_);
};

}  // namespace oodb::calculus

#endif  // OODB_CALCULUS_PREFILTER_H_
