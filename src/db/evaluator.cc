#include "db/evaluator.h"

#include <algorithm>
#include <functional>

#include "base/strings.h"

namespace oodb::db {

namespace {

// Orders equalities after all labels are bound; trivial helper.
bool WhereSatisfied(const dl::ClassDef& def,
                    const std::unordered_map<Symbol, ObjectId>& binding) {
  for (const auto& [l, r] : def.where) {
    auto li = binding.find(l);
    auto ri = binding.find(r);
    if (li == binding.end() || ri == binding.end()) return false;
    if (li->second != ri->second) return false;
  }
  return true;
}

}  // namespace

Result<std::vector<ObjectId>> QueryEvaluator::Evaluate(
    Symbol query_class, EvalStats* stats) const {
  // The candidate pool is the smallest extent among transitive schema
  // superclasses (all objects if there is none).
  std::vector<ObjectId> pool;
  bool have_pool = false;
  for (Symbol super : db_.model().SuperClosure(query_class)) {
    const dl::ClassDef* def = db_.model().FindClass(super);
    if (def == nullptr || def->is_query || super == db_.model().object_class) {
      continue;
    }
    std::vector<ObjectId> extent = db_.ClassExtent(super);
    if (!have_pool || extent.size() < pool.size()) {
      pool = std::move(extent);
      have_pool = true;
    }
  }
  if (!have_pool) pool = db_.AllObjects();
  return EvaluateOver(query_class, pool, stats);
}

Result<std::vector<ObjectId>> QueryEvaluator::EvaluateOver(
    Symbol query_class, const std::vector<ObjectId>& candidates,
    EvalStats* stats) const {
  std::vector<ObjectId> answers;
  for (ObjectId o : candidates) {
    OODB_ASSIGN_OR_RETURN(bool in, IsAnswer(query_class, o));
    if (in) answers.push_back(o);
  }
  std::sort(answers.begin(), answers.end());
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  if (stats != nullptr) {
    stats->candidates_examined += candidates.size();
    stats->answers = answers.size();
  }
  return answers;
}

Result<bool> QueryEvaluator::IsAnswer(Symbol query_class, ObjectId o) const {
  Context ctx;
  return IsAnswerImpl(query_class, o, ctx);
}

Result<bool> QueryEvaluator::IsAnswerImpl(Symbol query_class, ObjectId o,
                                          Context& ctx) const {
  const dl::ClassDef* def = db_.model().FindClass(query_class);
  if (def == nullptr) {
    return NotFoundError(StrCat("unknown class '",
                                db_.symbols().Name(query_class), "'"));
  }
  if (!def->is_query) return db_.InClass(o, query_class);
  if (!ctx.in_progress.insert(query_class).second) {
    return FailedPreconditionError(
        StrCat("recursive reference to query class '",
               db_.symbols().Name(query_class), "'"));
  }
  struct Cleanup {
    Context& ctx;
    Symbol cls;
    ~Cleanup() { ctx.in_progress.erase(cls); }
  } cleanup{ctx, query_class};

  for (Symbol super : def->supers) {
    if (super == db_.model().object_class) continue;
    const dl::ClassDef* super_def = db_.model().FindClass(super);
    if (super_def != nullptr && super_def->is_query) {
      OODB_ASSIGN_OR_RETURN(bool in, IsAnswerImpl(super, o, ctx));
      if (!in) return false;
    } else if (!db_.InClass(o, super)) {
      return false;
    }
  }

  Binding binding;
  return SolvePaths(*def, o, 0, binding, ctx);
}

Result<bool> QueryEvaluator::CheckFilter(const dl::ResolvedFilter& filter,
                                         ObjectId v, Binding& binding,
                                         bool* bound_here,
                                         Context& ctx) const {
  *bound_here = false;
  switch (filter.kind) {
    case dl::ResolvedFilter::Kind::kClass: {
      if (filter.name == db_.model().object_class) return true;
      const dl::ClassDef* def = db_.model().FindClass(filter.name);
      if (def != nullptr && def->is_query) {
        return IsAnswerImpl(filter.name, v, ctx);
      }
      return db_.InClass(v, filter.name);
    }
    case dl::ResolvedFilter::Kind::kConstant: {
      auto obj = db_.FindObject(filter.name);
      return obj.has_value() && *obj == v;
    }
    case dl::ResolvedFilter::Kind::kVariable: {
      auto it = binding.find(filter.name);
      if (it != binding.end()) return it->second == v;
      binding.emplace(filter.name, v);
      *bound_here = true;
      return true;
    }
  }
  return false;
}

Result<bool> QueryEvaluator::TraverseSteps(
    const std::vector<dl::ResolvedStep>& steps, size_t index, ObjectId cur,
    Binding& binding, Context& ctx,
    const std::function<Result<bool>(ObjectId)>& on_endpoint) const {
  if (index == steps.size()) return on_endpoint(cur);
  const dl::ResolvedStep& step = steps[index];
  for (ObjectId v : db_.AttrValues(cur, step.attr)) {
    bool bound_here = false;
    OODB_ASSIGN_OR_RETURN(bool pass,
                          CheckFilter(step.filter, v, binding, &bound_here,
                                      ctx));
    if (pass) {
      OODB_ASSIGN_OR_RETURN(
          bool done, TraverseSteps(steps, index + 1, v, binding, ctx,
                                   on_endpoint));
      if (done) return true;
    }
    if (bound_here) binding.erase(step.filter.name);
  }
  return false;
}

Result<bool> QueryEvaluator::SolvePaths(const dl::ClassDef& def, ObjectId o,
                                        size_t index, Binding& binding,
                                        Context& ctx) const {
  if (index == def.derived.size()) {
    if (!WhereSatisfied(def, binding)) return false;
    if (def.constraint == nullptr) return true;
    Binding quantified;
    return EvalConstraint(*def.constraint, o, binding, quantified, ctx);
  }
  const dl::ResolvedPath& path = def.derived[index];
  return TraverseSteps(
      path.steps, 0, o, binding, ctx,
      [&](ObjectId endpoint) -> Result<bool> {
        bool bound_label = false;
        if (path.label.valid()) {
          auto it = binding.find(path.label);
          if (it != binding.end()) {
            if (it->second != endpoint) return false;
          } else {
            binding.emplace(path.label, endpoint);
            bound_label = true;
          }
        }
        OODB_ASSIGN_OR_RETURN(bool done,
                              SolvePaths(def, o, index + 1, binding, ctx));
        if (!done && bound_label) binding.erase(path.label);
        return done;
      });
}

Result<std::optional<ObjectId>> QueryEvaluator::ResolveTerm(
    const dl::CTerm& term, ObjectId self, const Binding& binding,
    const Binding& quantified) const {
  switch (term.kind) {
    case dl::CTerm::Kind::kThis:
      return std::optional<ObjectId>(self);
    case dl::CTerm::Kind::kLabel: {
      auto it = binding.find(term.name);
      if (it == binding.end()) return std::optional<ObjectId>();
      return std::optional<ObjectId>(it->second);
    }
    case dl::CTerm::Kind::kVariable: {
      auto it = quantified.find(term.name);
      if (it == quantified.end()) return std::optional<ObjectId>();
      return std::optional<ObjectId>(it->second);
    }
    case dl::CTerm::Kind::kConstant: {
      auto obj = db_.FindObject(term.name);
      if (!obj.has_value()) return std::optional<ObjectId>();
      return std::optional<ObjectId>(*obj);
    }
  }
  return std::optional<ObjectId>();
}

Result<bool> QueryEvaluator::EvalConstraint(const dl::CFormula& f,
                                            ObjectId self, Binding& binding,
                                            Binding& quantified,
                                            Context& ctx) const {
  switch (f.kind) {
    case dl::CFormula::Kind::kForall:
    case dl::CFormula::Kind::kExists: {
      const bool is_forall = f.kind == dl::CFormula::Kind::kForall;
      std::vector<ObjectId> domain = f.cls == db_.model().object_class
                                         ? db_.AllObjects()
                                         : db_.ClassExtent(f.cls);
      // Quantifier domains may also be query classes.
      const dl::ClassDef* cls_def = db_.model().FindClass(f.cls);
      if (cls_def != nullptr && cls_def->is_query) {
        std::vector<ObjectId> filtered;
        for (ObjectId o : db_.AllObjects()) {
          OODB_ASSIGN_OR_RETURN(bool in, IsAnswerImpl(f.cls, o, ctx));
          if (in) filtered.push_back(o);
        }
        domain = std::move(filtered);
      }
      auto saved = quantified.find(f.var) != quantified.end()
                       ? std::optional<ObjectId>(quantified.at(f.var))
                       : std::nullopt;
      bool result = is_forall;
      for (ObjectId o : domain) {
        quantified[f.var] = o;
        OODB_ASSIGN_OR_RETURN(
            bool inner,
            EvalConstraint(*f.children[0], self, binding, quantified, ctx));
        if (inner != is_forall) {
          result = !is_forall;
          break;
        }
      }
      if (saved.has_value()) {
        quantified[f.var] = *saved;
      } else {
        quantified.erase(f.var);
      }
      return result;
    }
    case dl::CFormula::Kind::kNot: {
      OODB_ASSIGN_OR_RETURN(
          bool inner,
          EvalConstraint(*f.children[0], self, binding, quantified, ctx));
      return !inner;
    }
    case dl::CFormula::Kind::kAnd:
    case dl::CFormula::Kind::kOr: {
      const bool is_and = f.kind == dl::CFormula::Kind::kAnd;
      for (const dl::CFormulaPtr& child : f.children) {
        OODB_ASSIGN_OR_RETURN(
            bool inner,
            EvalConstraint(*child, self, binding, quantified, ctx));
        if (inner != is_and) return !is_and;
      }
      return is_and;
    }
    case dl::CFormula::Kind::kIn: {
      OODB_ASSIGN_OR_RETURN(std::optional<ObjectId> t,
                            ResolveTerm(f.t1, self, binding, quantified));
      if (!t.has_value()) return false;
      if (f.cls == db_.model().object_class) return true;
      const dl::ClassDef* cls_def = db_.model().FindClass(f.cls);
      if (cls_def != nullptr && cls_def->is_query) {
        return IsAnswerImpl(f.cls, *t, ctx);
      }
      return db_.InClass(*t, f.cls);
    }
    case dl::CFormula::Kind::kAttr: {
      OODB_ASSIGN_OR_RETURN(std::optional<ObjectId> s,
                            ResolveTerm(f.t1, self, binding, quantified));
      OODB_ASSIGN_OR_RETURN(std::optional<ObjectId> t,
                            ResolveTerm(f.t2, self, binding, quantified));
      if (!s.has_value() || !t.has_value()) return false;
      std::vector<ObjectId> values = db_.AttrValues(*s, f.attr);
      return std::find(values.begin(), values.end(), *t) != values.end();
    }
    case dl::CFormula::Kind::kEq: {
      OODB_ASSIGN_OR_RETURN(std::optional<ObjectId> s,
                            ResolveTerm(f.t1, self, binding, quantified));
      OODB_ASSIGN_OR_RETURN(std::optional<ObjectId> t,
                            ResolveTerm(f.t2, self, binding, quantified));
      return s.has_value() && t.has_value() && *s == *t;
    }
  }
  return InternalError("unreachable constraint kind");
}

}  // namespace oodb::db
