// Direct unit tests of the FOL evaluator over interpretations (the
// connective/quantifier paths that concept translations exercise only
// indirectly) plus small interpretation edge cases.
#include <gtest/gtest.h>

#include "ext/brute_force.h"
#include "ext/chase.h"
#include "interp/eval.h"
#include "interp/interpretation.h"
#include "ql/fol.h"
#include "ql/term_factory.h"

namespace oodb {
namespace {

using interp::Env;
using interp::EvalFormula;
using interp::Interpretation;
using ql::FolTerm;

struct Fx {
  SymbolTable symbols;
  ql::TermFactory f{&symbols};
  Interpretation interp{3};

  Symbol S(const char* name) { return symbols.Intern(name); }
  ql::FormulaPtr A(int who) {
    return ql::MakeUnary(S("A"), FolTerm::Var(Var(who)));
  }
  Symbol Var(int who) { return symbols.Intern(std::string(1, 'u' + who)); }

  Fx() {
    interp.AddToConcept(S("A"), 0);
    interp.AddToConcept(S("A"), 1);
    interp.AddToConcept(S("B"), 1);
    interp.AddEdge(S("p"), 0, 1);
    EXPECT_TRUE(interp.AssignConstant(S("c"), 2).ok());
  }
};

TEST(FolEval, ConnectivesBehaveClassically) {
  Fx fx;
  Env env{{fx.Var(0), 0}};  // u := element 0 (in A, not in B)
  auto a = ql::MakeUnary(fx.S("A"), FolTerm::Var(fx.Var(0)));
  auto b = ql::MakeUnary(fx.S("B"), FolTerm::Var(fx.Var(0)));
  EXPECT_TRUE(EvalFormula(fx.interp, a, env));
  EXPECT_FALSE(EvalFormula(fx.interp, b, env));
  EXPECT_TRUE(EvalFormula(fx.interp, ql::MakeNot(b), env));
  EXPECT_FALSE(EvalFormula(fx.interp, ql::MakeAnd({a, b}), env));
  EXPECT_TRUE(EvalFormula(fx.interp, ql::MakeOr({b, a}), env));
  EXPECT_TRUE(EvalFormula(fx.interp, ql::MakeImplies(b, a), env));
  EXPECT_FALSE(EvalFormula(fx.interp, ql::MakeImplies(a, b), env));
  EXPECT_TRUE(EvalFormula(fx.interp, ql::MakeTrue(), env));
}

TEST(FolEval, QuantifiersSweepTheDomain) {
  Fx fx;
  Env env;
  Symbol v = fx.Var(0);
  auto a = ql::MakeUnary(fx.S("A"), FolTerm::Var(v));
  // ∃v.A(v) holds; ∀v.A(v) fails (element 2 is not in A).
  EXPECT_TRUE(EvalFormula(fx.interp, ql::MakeExists(v, a), env));
  EXPECT_FALSE(EvalFormula(fx.interp, ql::MakeForall(v, a), env));
  EXPECT_TRUE(env.empty());  // quantifiers clean up their bindings
}

TEST(FolEval, ShadowedVariablesAreRestored) {
  Fx fx;
  Symbol v = fx.Var(0);
  Env env{{v, 0}};
  auto b = ql::MakeUnary(fx.S("B"), FolTerm::Var(v));
  // ∃v.B(v) rebinds v internally (finds element 1)…
  EXPECT_TRUE(EvalFormula(fx.interp, ql::MakeExists(v, b), env));
  // …and the outer binding of v (element 0) is restored.
  EXPECT_EQ(env.at(v), 0);
}

TEST(FolEval, ConstantsResolveThroughTheInterpretation) {
  Fx fx;
  Env env;
  auto atom = ql::MakeUnary(fx.S("A"), FolTerm::Const(fx.S("c")));
  EXPECT_FALSE(EvalFormula(fx.interp, atom, env));  // element 2 ∉ A
  fx.interp.AddToConcept(fx.S("A"), 2);
  EXPECT_TRUE(EvalFormula(fx.interp, atom, env));
  // Unassigned constants make atoms false.
  auto ghost = ql::MakeUnary(fx.S("A"), FolTerm::Const(fx.S("ghost")));
  EXPECT_FALSE(EvalFormula(fx.interp, ghost, env));
  auto eq = ql::MakeEq(FolTerm::Const(fx.S("ghost")),
                       FolTerm::Const(fx.S("ghost")));
  EXPECT_FALSE(EvalFormula(fx.interp, eq, env));
}

TEST(FolEval, BinaryAtomsFollowEdges) {
  Fx fx;
  Symbol v = fx.Var(0);
  Symbol w = fx.Var(1);
  Env env{{v, 0}, {w, 1}};
  auto edge = ql::MakeBinary(fx.S("p"), FolTerm::Var(v), FolTerm::Var(w));
  EXPECT_TRUE(EvalFormula(fx.interp, edge, env));
  auto back = ql::MakeBinary(fx.S("p"), FolTerm::Var(w), FolTerm::Var(v));
  EXPECT_FALSE(EvalFormula(fx.interp, back, env));
}

TEST(Interpretation, AddElementGrowsEverything) {
  Fx fx;
  int d = fx.interp.AddElement();
  EXPECT_EQ(d, 3);
  EXPECT_EQ(fx.interp.domain_size(), 4u);
  fx.interp.AddToConcept(fx.S("A"), d);
  fx.interp.AddEdge(fx.S("p"), d, 0);
  EXPECT_TRUE(fx.interp.InConcept(fx.S("A"), d));
  EXPECT_TRUE(fx.interp.HasEdge(fx.S("p"), d, 0));
}

TEST(Interpretation, EdgeCountCountsPairs) {
  Fx fx;
  EXPECT_EQ(fx.interp.EdgeCount(fx.S("p")), 1u);
  fx.interp.AddEdge(fx.S("p"), 1, 2);
  fx.interp.AddEdge(fx.S("p"), 1, 2);  // duplicate: ignored
  EXPECT_EQ(fx.interp.EdgeCount(fx.S("p")), 2u);
  EXPECT_EQ(fx.interp.EdgeCount(fx.S("q")), 0u);
}

// --- Brute-force satisfiability (ext) -----------------------------------------

TEST(BruteForceSat, FindsAndRefutesModels) {
  SymbolTable symbols;
  ext::ExtSchema sigma;
  Symbol a = symbols.Intern("A");
  Symbol b = symbols.Intern("B");
  sigma.AddIsA(a, b);
  // A ⊓ ¬B is unsatisfiable under A ⊑ B.
  auto unsat = ext::BruteForceSatisfiable(
      sigma, ext::XAnd({ext::XPrim(a), ext::XNotPrim(b)}), {a, b}, {}, {});
  ASSERT_TRUE(unsat.decided);
  EXPECT_FALSE(unsat.subsumed);  // "subsumed" doubles as "satisfiable"
  // A ⊓ B is satisfiable.
  auto sat = ext::BruteForceSatisfiable(
      sigma, ext::XAnd({ext::XPrim(a), ext::XPrim(b)}), {a, b}, {}, {});
  ASSERT_TRUE(sat.decided);
  EXPECT_TRUE(sat.subsumed);
  EXPECT_GE(sat.countermodel_domain, 1u);
}

TEST(BruteForceSat, RespectsInterpretationBudget) {
  SymbolTable symbols;
  ext::ExtSchema sigma;
  std::vector<Symbol> concepts;
  for (int i = 0; i < 6; ++i) {
    concepts.push_back(symbols.Intern(std::string("C") + char('0' + i)));
  }
  ext::BruteForceOptions options;
  options.max_domain = 3;
  options.max_interpretations = 100;
  // An unsatisfiable target forces full enumeration → budget hit.
  auto result = ext::BruteForceSatisfiable(
      sigma,
      ext::XAnd({ext::XPrim(concepts[0]), ext::XNotPrim(concepts[0])}),
      concepts, {symbols.Intern("p")}, {}, options);
  EXPECT_FALSE(result.decided);
  EXPECT_GT(result.interpretations, 100u);
}

}  // namespace
}  // namespace oodb
