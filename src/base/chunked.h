// Append-only, pointer-stable storage with lock-free indexed reads.
//
// SymbolTable and TermFactory serve two very different access patterns:
// interning (rare after warm-up, needs a lock around the dedup index) and
// id-to-payload lookup (the calculus hot path, millions of calls per
// completion). ChunkedVector lets the lookup side run without any lock:
// elements live in fixed-size chunks that never move, so a reference
// obtained for id i stays valid forever, and growing the container never
// relocates published elements the way std::vector does.
#ifndef OODB_BASE_CHUNKED_H_
#define OODB_BASE_CHUNKED_H_

#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <utility>

namespace oodb {

// Concurrency contract:
//   * push_back() calls must be serialized externally (the owner's intern
//     mutex). A push_back publishes the element with a release store of
//     size_, and new chunks with release stores of the chunk pointer.
//   * operator[] / size() are lock-free. A reader may access any index it
//     learned through a happens-before edge with the publishing
//     push_back: thread start, or an acquire of the same mutex the writer
//     held. Indexes taken from a racy size() poll additionally synchronize
//     through the release/acquire pair on size_.
//   * Elements must not be mutated after publication (readers take plain
//     const references).
template <typename T, size_t kChunkBits = 10>
class ChunkedVector {
 public:
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
  static constexpr size_t kMaxChunks = size_t{1} << 12;  // 4M elements

  ChunkedVector() = default;
  ~ChunkedVector() {
    for (auto& slot : chunks_) {
      delete[] slot.load(std::memory_order_relaxed);
    }
  }

  ChunkedVector(const ChunkedVector&) = delete;
  ChunkedVector& operator=(const ChunkedVector&) = delete;

  size_t size() const { return size_.load(std::memory_order_acquire); }

  const T& operator[](size_t i) const {
    assert(i < size());
    const T* chunk = chunks_[i >> kChunkBits].load(std::memory_order_acquire);
    return chunk[i & (kChunkSize - 1)];
  }

  // Appends and returns the new element's index. External serialization
  // required; see the contract above.
  size_t push_back(T value) {
    const size_t i = size_.load(std::memory_order_relaxed);
    const size_t chunk_index = i >> kChunkBits;
    assert(chunk_index < kMaxChunks && "ChunkedVector capacity exhausted");
    T* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new T[kChunkSize]();
      chunks_[chunk_index].store(chunk, std::memory_order_release);
    }
    chunk[i & (kChunkSize - 1)] = std::move(value);
    size_.store(i + 1, std::memory_order_release);
    return i;
  }

 private:
  std::array<std::atomic<T*>, kMaxChunks> chunks_{};
  std::atomic<size_t> size_{0};
};

}  // namespace oodb

#endif  // OODB_BASE_CHUNKED_H_
