# Empty compiler generated dependencies file for oodb_interp.
# This may be replaced when dependencies are built.
