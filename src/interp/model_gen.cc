#include "interp/model_gen.h"

#include "base/strings.h"

namespace oodb::interp {

namespace {

// Closes concept memberships under the monotone schema consequences.
// Returns whether anything changed.
bool CloseMemberships(const schema::Schema& sigma, Interpretation& interp) {
  bool changed = false;
  bool round_changed = true;
  while (round_changed) {
    round_changed = false;
    for (const auto& ax : sigma.inclusions()) {
      const ql::ConceptNode& n = sigma.terms().node(ax.rhs);
      for (int d : interp.ConceptExtension(ax.lhs)) {
        switch (n.kind) {
          case ql::ConceptKind::kPrimitive:
            if (!interp.InConcept(n.sym, d)) {
              interp.AddToConcept(n.sym, d);
              round_changed = true;
            }
            break;
          case ql::ConceptKind::kAll: {
            Symbol range = sigma.terms().node(n.lhs).sym;
            for (int t : interp.Successors(n.attr.prim, d)) {
              if (!interp.InConcept(range, t)) {
                interp.AddToConcept(range, t);
                round_changed = true;
              }
            }
            break;
          }
          default:
            break;  // ∃P and ≤1P are handled by the edge-repair steps.
        }
      }
    }
    for (const auto& ax : sigma.typings()) {
      for (size_t d = 0; d < interp.domain_size(); ++d) {
        int s = static_cast<int>(d);
        for (int t : interp.Successors(ax.attr, s)) {
          if (!interp.InConcept(ax.domain, s)) {
            interp.AddToConcept(ax.domain, s);
            round_changed = true;
          }
          if (!interp.InConcept(ax.range, t)) {
            interp.AddToConcept(ax.range, t);
            round_changed = true;
          }
        }
      }
    }
    changed |= round_changed;
  }
  return changed;
}

// Enforces every A ⊑ (≤1 P): drops all but the first P-edge of affected
// elements. Returns whether anything changed.
bool EnforceFunctional(const schema::Schema& sigma, Interpretation& interp) {
  bool changed = false;
  for (const auto& ax : sigma.inclusions()) {
    const ql::ConceptNode& n = sigma.terms().node(ax.rhs);
    if (n.kind != ql::ConceptKind::kAtMostOne) continue;
    for (int d : interp.ConceptExtension(ax.lhs)) {
      std::vector<int> succ = interp.Successors(n.attr.prim, d);
      for (size_t i = 1; i < succ.size(); ++i) {
        interp.RemoveEdge(n.attr.prim, d, succ[i]);
        changed = true;
      }
    }
  }
  return changed;
}

// Enforces every A ⊑ ∃P by adding a random edge where none exists.
// Returns whether anything changed.
bool EnforceNecessary(const schema::Schema& sigma, Interpretation& interp,
                      Rng& rng) {
  bool changed = false;
  for (const auto& ax : sigma.inclusions()) {
    const ql::ConceptNode& n = sigma.terms().node(ax.rhs);
    if (n.kind != ql::ConceptKind::kExists) continue;
    Symbol attr = sigma.terms().path(n.path)[0].attr.prim;
    for (int d : interp.ConceptExtension(ax.lhs)) {
      if (interp.Successors(attr, d).empty()) {
        int t = static_cast<int>(rng.Index(interp.domain_size()));
        interp.AddEdge(attr, d, t);
        changed = true;
      }
    }
  }
  return changed;
}

}  // namespace

Result<Interpretation> GenerateModel(const schema::Schema& sigma,
                                     const Signature& sig,
                                     const ModelGenOptions& options,
                                     Rng& rng) {
  size_t domain = std::max(options.domain_size, sig.constants.size());
  if (domain == 0) domain = 1;
  Interpretation interp(domain);

  // UNA: distinct constants go to distinct elements.
  for (size_t i = 0; i < sig.constants.size(); ++i) {
    Status s = interp.AssignConstant(sig.constants[i], static_cast<int>(i));
    if (!s.ok()) return s;
  }

  for (Symbol concept_name : sig.concepts) {
    for (size_t d = 0; d < domain; ++d) {
      if (rng.Bernoulli(options.concept_density)) {
        interp.AddToConcept(concept_name, static_cast<int>(d));
      }
    }
  }
  for (Symbol attr : sig.attrs) {
    for (size_t s = 0; s < domain; ++s) {
      for (size_t t = 0; t < domain; ++t) {
        if (rng.Bernoulli(options.edge_density)) {
          interp.AddEdge(attr, static_cast<int>(s), static_cast<int>(t));
        }
      }
    }
  }

  // Repair to a Σ-model.
  for (int round = 0; round < options.max_repair_rounds; ++round) {
    bool changed = CloseMemberships(sigma, interp);
    changed |= EnforceFunctional(sigma, interp);
    changed |= EnforceNecessary(sigma, interp, rng);
    if (!changed) return interp;
  }
  return InternalError(
      StrCat("model repair did not converge within ",
             options.max_repair_rounds, " rounds"));
}

}  // namespace oodb::interp
