
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ql/fol.cc" "src/ql/CMakeFiles/oodb_ql.dir/fol.cc.o" "gcc" "src/ql/CMakeFiles/oodb_ql.dir/fol.cc.o.d"
  "/root/repo/src/ql/print.cc" "src/ql/CMakeFiles/oodb_ql.dir/print.cc.o" "gcc" "src/ql/CMakeFiles/oodb_ql.dir/print.cc.o.d"
  "/root/repo/src/ql/term_factory.cc" "src/ql/CMakeFiles/oodb_ql.dir/term_factory.cc.o" "gcc" "src/ql/CMakeFiles/oodb_ql.dir/term_factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/oodb_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
