// Raw (unresolved) syntax tree for the concrete database language DL
// (paper Sect. 2): Class / QueryClass / Attribute declarations with
// isA lists, attribute sections, derived labeled paths, where clauses and
// first-order constraint clauses.
#ifndef OODB_DL_AST_H_
#define OODB_DL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace oodb::dl::ast {

// --- Constraint formulas ---------------------------------------------------

struct Term {
  enum class Kind { kThis, kIdent };
  Kind kind = Kind::kIdent;
  std::string name;  // empty for `this`
  int line = 0;
};

struct Formula;
using FormulaPtr = std::unique_ptr<Formula>;

struct Formula {
  enum class Kind {
    kForall,  // forall var/Class body
    kExists,  // exists var/Class body
    kNot,
    kAnd,
    kOr,
    kIn,    // (t in Class)
    kAttr,  // (t1 attr t2)
    kEq,    // (t1 = t2)
  };
  Kind kind;
  std::string var;   // quantifiers
  std::string cls;   // quantifiers, kIn
  std::string attr;  // kAttr
  Term t1, t2;
  std::vector<FormulaPtr> children;
  int line = 0;
};

// --- Declarations ------------------------------------------------------------

// One `a: C` entry of an attribute section, with the section's flags.
struct AttrEntry {
  std::string attr;
  std::string range;
  bool necessary = false;
  bool single = false;
  int line = 0;
};

// A step of a labeled path: `a` (bare), `(a: C)`, `(a: {c})`, `(a: ?x)`.
struct PathStep {
  enum class Filter { kNone, kClass, kConstant, kVariable };
  std::string attr;
  Filter filter_kind = Filter::kNone;
  std::string filter;  // class / constant / variable name
  int line = 0;
};

struct DerivedPath {
  std::optional<std::string> label;
  std::vector<PathStep> steps;
  int line = 0;
};

struct WhereEq {
  std::string lhs;
  std::string rhs;
  int line = 0;
};

struct ClassDecl {
  bool is_query = false;
  std::string name;
  std::vector<std::string> supers;
  std::vector<AttrEntry> attrs;        // schema classes
  std::vector<DerivedPath> derived;    // query classes
  std::vector<WhereEq> where;
  FormulaPtr constraint;               // may be null
  int line = 0;
};

struct AttributeDecl {
  std::string name;
  std::string domain;  // empty = Object
  std::string range;   // empty = Object
  std::string inverse; // optional synonym name
  int line = 0;
};

struct File {
  std::vector<ClassDecl> classes;
  std::vector<AttributeDecl> attributes;
};

}  // namespace oodb::dl::ast

#endif  // OODB_DL_AST_H_
