#include "db/concept_eval.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace oodb::db {

std::vector<ObjectId> ConceptPathReach(const Database& database,
                                       const ql::TermFactory& f,
                                       ql::PathId p, ObjectId o) {
  std::vector<ObjectId> frontier = {o};
  for (const ql::Restriction& r : f.path(p)) {
    std::unordered_set<ObjectId> next;
    for (ObjectId s : frontier) {
      for (ObjectId t : database.AttrValues(s, r.attr)) {
        if (ConceptHolds(database, f, r.filter, t)) next.insert(t);
      }
    }
    frontier.assign(next.begin(), next.end());
    if (frontier.empty()) break;
  }
  std::sort(frontier.begin(), frontier.end());
  return frontier;
}

bool ConceptHolds(const Database& database, const ql::TermFactory& f,
                  ql::ConceptId c, ObjectId o) {
  const ql::ConceptNode& n = f.node(c);
  switch (n.kind) {
    case ql::ConceptKind::kTop:
      return true;
    case ql::ConceptKind::kPrimitive:
      return database.InClass(o, n.sym);
    case ql::ConceptKind::kSingleton: {
      auto named = database.FindObject(n.sym);
      return named.has_value() && *named == o;
    }
    case ql::ConceptKind::kAnd:
      return ConceptHolds(database, f, n.lhs, o) &&
             ConceptHolds(database, f, n.rhs, o);
    case ql::ConceptKind::kExists:
      return !ConceptPathReach(database, f, n.path, o).empty();
    case ql::ConceptKind::kAgree: {
      std::vector<ObjectId> reach =
          ConceptPathReach(database, f, n.path, o);
      return std::binary_search(reach.begin(), reach.end(), o);
    }
    case ql::ConceptKind::kAll:
    case ql::ConceptKind::kAtMostOne:
      // SL-only forms never occur in translated query concepts.
      assert(false && "SL-only concept evaluated over a database state");
      return false;
  }
  return false;
}

}  // namespace oodb::db
