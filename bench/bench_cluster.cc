// E20: cluster scaling + failover. Starts in-process daemon fleets of
// 1, 2 and 4 nodes sharing a consistent-hash ring (R=1), spreads 8
// sessions evenly over the ring, and drives each session from its own
// thread through the failover-aware ClusterClient:
//
//   A. scaling   — per batch, the driver sends `SLEEP <pad>` to the
//                  session's owner and then one BCHECK of 256 pairs.
//                  The pad models per-request session work and pins
//                  each batch to pad_ms of *owner worker time*, so
//                  aggregate capacity is worker-bound and additive in
//                  fleet size even on a single-CPU host (where raw
//                  CPU-bound checking cannot scale; the checks
//                  themselves are memo-warm and cheap). Reported
//                  checks/s therefore measures fleet capacity under a
//                  fixed per-batch cost, not single-node CPU.
//   B. failover  — a 3-node fleet, two sessions with distinct owners;
//                  the owner of one is shut down and reads on it must
//                  keep answering from its replica within the client's
//                  retry budget, with verdicts identical to before.
//
// Every wire verdict is verified against precomputed in-process
// SubsumptionChecker results. Writes BENCH_cluster.json; exits non-zero
// on any verdict mismatch, scaling-phase transport error, failover
// failure, or (full mode) 1→4 scaling below 2.5x.
//
// usage: bench_cluster [--quick] [--pad-ms=N] [--out=path]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "base/strings.h"
#include "bench_util.h"
#include "calculus/subsumption.h"
#include "cluster/cluster_client.h"
#include "cluster/membership.h"
#include "cluster/ring.h"
#include "dl/analyzer.h"
#include "dl/translate.h"
#include "gen/dl_gen.h"
#include "ql/term_factory.h"
#include "schema/schema.h"
#include "server/server.h"

namespace oodb {
namespace {

constexpr size_t kSessions = 8;
constexpr size_t kBatchSize = 256;

// The same parse → translate → check pipeline the daemons run.
struct Reference {
  SymbolTable symbols;
  std::unique_ptr<ql::TermFactory> terms;
  std::unique_ptr<schema::Schema> sigma;
  std::unique_ptr<dl::Model> model;
  std::unique_ptr<dl::Translator> translator;
  std::unique_ptr<calculus::SubsumptionChecker> checker;

  static std::unique_ptr<Reference> FromSource(const std::string& source) {
    auto ref = std::make_unique<Reference>();
    ref->terms = std::make_unique<ql::TermFactory>(&ref->symbols);
    ref->sigma = std::make_unique<schema::Schema>(ref->terms.get());
    auto parsed = dl::ParseAndAnalyze(source, &ref->symbols);
    if (!parsed.ok()) return nullptr;
    ref->model = std::make_unique<dl::Model>(*std::move(parsed));
    ref->translator =
        std::make_unique<dl::Translator>(*ref->model, ref->terms.get());
    if (!ref->translator->BuildSchema(ref->sigma.get()).ok()) return nullptr;
    ref->checker = std::make_unique<calculus::SubsumptionChecker>(*ref->sigma);
    return ref;
  }

  Result<bool> Check(const std::string& c, const std::string& d) {
    auto concept_of = [this](const std::string& name) -> Result<ql::ConceptId> {
      Symbol s = symbols.Find(name);
      const dl::ClassDef* def = s.valid() ? model->FindClass(s) : nullptr;
      if (def == nullptr) return NotFoundError("no class");
      if (!def->is_query) return terms->Primitive(s);
      return translator->QueryConcept(s);
    };
    OODB_ASSIGN_OR_RETURN(ql::ConceptId cc, concept_of(c));
    OODB_ASSIGN_OR_RETURN(ql::ConceptId dd, concept_of(d));
    return checker->Subsumes(cc, dd);
  }
};

int Fail(const char* what) {
  std::fprintf(stderr, "bench_cluster: %s\n", what);
  return 1;
}

// Binds an ephemeral loopback port and releases it for a daemon to
// rebind (static membership needs every port known before Start()).
int GrabPort() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  socklen_t len = sizeof(addr);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return -1;
  }
  ::close(fd);
  return ntohs(addr.sin_port);
}

struct Fleet {
  cluster::ClusterConfig config;  // self = kNotAMember (the client view)
  std::vector<std::unique_ptr<server::Server>> servers;

  static std::unique_ptr<Fleet> Start(size_t n, size_t replicas) {
    auto fleet = std::make_unique<Fleet>();
    for (size_t i = 0; i < n; ++i) {
      const int port = GrabPort();
      if (port < 0) return nullptr;
      fleet->config.nodes.push_back(cluster::NodeAddr{"127.0.0.1", port});
    }
    fleet->config.replicas = replicas;
    for (size_t i = 0; i < n; ++i) {
      server::ServerOptions options;
      options.port = static_cast<uint16_t>(fleet->config.nodes[i].port);
      options.num_threads = 2;  // docs/cluster.md §6: ≥2 in cluster mode
      options.max_pending = 256;
      options.cluster = fleet->config;
      options.cluster.self = i;
      auto server = std::make_unique<server::Server>(std::move(options));
      if (!server->Start().ok()) return nullptr;
      fleet->servers.push_back(std::move(server));
    }
    return fleet;
  }

  void ShutdownAll() {
    for (auto& server : servers) {
      if (server != nullptr) server->Shutdown();
    }
  }
};

// Picks kSessions names the ring spreads evenly: ceil-share per node, so
// every node owns sessions and the fleet's whole worker pool is in play.
std::vector<std::string> EvenSessions(const cluster::Ring& ring, size_t n) {
  const size_t share = kSessions / n;
  std::vector<size_t> owned(n, 0);
  std::vector<std::string> sessions;
  for (size_t i = 0; sessions.size() < kSessions && i < 100000; ++i) {
    const std::string name = StrCat("sess-", i);
    const size_t owner = ring.OwnerOf(name);
    if (owned[owner] >= share) continue;
    owned[owner]++;
    sessions.push_back(name);
  }
  return sessions;
}

struct ScalePhase {
  size_t fleet_size = 0;
  double checks_per_sec = 0;
  uint64_t checks = 0;
  uint64_t transport_errors = 0;
};

int Run(int argc, char** argv) {
  bool quick = false;
  uint64_t pad_ms = 5;
  std::string out = "BENCH_cluster.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--pad-ms=", 0) == 0) {
      pad_ms = std::stoul(arg.substr(9));
    } else if (arg.rfind("--out=", 0) == 0) {
      out = arg.substr(6);
    } else {
      std::fprintf(stderr,
                   "usage: bench_cluster [--quick] [--pad-ms=N] [--out=path]\n");
      return 64;
    }
  }
  const size_t batches_per_session = quick ? 6 : 40;

  // ---- Seeded corpus with precomputed in-process verdicts ------------
  Rng rng(7);
  gen::DlGenOptions gen_options;
  gen_options.num_classes = 8;
  gen_options.num_attrs = 4;
  gen_options.num_queries = 8;
  gen::GeneratedDl dl = gen::GenerateDlSource(rng, gen_options);
  auto ref = Reference::FromSource(dl.source);
  if (ref == nullptr) return Fail("generated schema failed to parse");

  std::vector<std::pair<std::string, std::string>> pairs;
  std::vector<bool> expected;
  for (const std::string& c : dl.query_names) {
    for (const std::string& d : dl.query_names) {
      auto verdict = ref->Check(c, d);
      if (!verdict.ok()) continue;
      pairs.emplace_back(c, d);
      expected.push_back(*verdict);
    }
  }
  if (pairs.size() < 16) return Fail("corpus unexpectedly small");

  std::atomic<uint64_t> mismatches{0};

  // ---- Phase A: scaling sweep over fleet sizes -----------------------
  const std::vector<size_t> kFleets = {1, 2, 4};
  std::vector<ScalePhase> phases;
  for (const size_t n : kFleets) {
    auto fleet = Fleet::Start(n, /*replicas=*/1);
    if (fleet == nullptr) return Fail("fleet failed to start");
    const cluster::Ring ring(fleet->config.nodes);
    const std::vector<std::string> sessions = EvenSessions(ring, n);
    if (sessions.size() != kSessions) return Fail("session spread failed");

    {
      cluster::ClusterClient loader(fleet->config);
      for (const std::string& s : sessions) {
        if (!loader.Load(s, dl.source).ok()) return Fail("LOAD failed");
      }
    }

    ScalePhase phase;
    phase.fleet_size = n;
    std::atomic<uint64_t> errors{0};
    std::vector<std::thread> threads;
    const std::string sleep_line = StrCat("SLEEP ", pad_ms);
    const auto wall_start = std::chrono::steady_clock::now();
    for (size_t t = 0; t < kSessions; ++t) {
      threads.emplace_back([&, t] {
        cluster::ClusterClient client(fleet->config);
        const std::string& session = sessions[t];
        const size_t owner = client.OwnerOf(session);
        for (size_t b = 0; b < batches_per_session; ++b) {
          // The pad charges this batch pad_ms of owner worker time.
          if (!client.CallAt(owner, sleep_line).ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          // Walk the corpus with a per-session offset so sessions are
          // not in lockstep on the shared memo shards.
          std::vector<std::pair<std::string, std::string>> batch;
          std::vector<bool> want;
          batch.reserve(kBatchSize);
          want.reserve(kBatchSize);
          for (size_t i = 0; i < kBatchSize; ++i) {
            const size_t at = (b * kBatchSize + i * (t + 1)) % pairs.size();
            batch.push_back(pairs[at]);
            want.push_back(expected[at]);
          }
          auto verdicts = client.CheckBatch(session, batch);
          if (!verdicts.ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          for (size_t i = 0; i < kBatchSize; ++i) {
            if ((*verdicts)[i] != want[i]) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        errors.fetch_add(client.retry_stats().transport_errors,
                         std::memory_order_relaxed);
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
    fleet->ShutdownAll();
    phase.checks = kSessions * batches_per_session * kBatchSize;
    phase.checks_per_sec =
        wall_s > 0 ? static_cast<double>(phase.checks) / wall_s : 0.0;
    phase.transport_errors = errors.load();
    phases.push_back(phase);
  }

  const double scaling_1_to_4 =
      phases[0].checks_per_sec > 0
          ? phases[2].checks_per_sec / phases[0].checks_per_sec
          : 0.0;

  bench::Section("E20: cluster BCHECK capacity vs fleet size");
  bench::Table table({"nodes", "sessions", "checks", "checks_per_sec",
                      "transport_errors"});
  for (const ScalePhase& phase : phases) {
    table.AddRow({std::to_string(phase.fleet_size),
                  std::to_string(kSessions), std::to_string(phase.checks),
                  bench::Fmt(phase.checks_per_sec, 0),
                  std::to_string(phase.transport_errors)});
  }
  table.Print();
  std::printf("pad %llu ms/batch; 1->4 scaling %.2fx\n",
              static_cast<unsigned long long>(pad_ms), scaling_1_to_4);

  // ---- Phase B: failover — reads survive losing the owner ------------
  uint64_t failover_reads = 0, failover_failures = 0, failovers = 0;
  {
    auto fleet = Fleet::Start(3, /*replicas=*/1);
    if (fleet == nullptr) return Fail("failover fleet failed to start");
    cluster::BackoffPolicy backoff;
    backoff.base_ms = 1;
    backoff.cap_ms = 50;
    cluster::ClusterClient client(fleet->config, backoff);

    // Two sessions with distinct owners: one loses its owner, the other
    // is the control.
    std::string doomed, control;
    for (int i = 0; control.empty(); ++i) {
      if (i > 10000) return Fail("no two sessions with distinct owners");
      const std::string name = StrCat("fo-", i);
      if (doomed.empty()) {
        doomed = name;
      } else if (client.OwnerOf(name) != client.OwnerOf(doomed)) {
        control = name;
      }
    }
    for (const std::string& s : {doomed, control}) {
      if (!client.Load(s, dl.source).ok()) return Fail("failover LOAD");
    }
    std::vector<bool> before_doomed, before_control;
    for (size_t i = 0; i < 16; ++i) {
      auto a = client.Check(doomed, pairs[i].first, pairs[i].second);
      auto b = client.Check(control, pairs[i].first, pairs[i].second);
      if (!a.ok() || !b.ok()) return Fail("failover baseline read");
      before_doomed.push_back(*a);
      before_control.push_back(*b);
    }

    const size_t owner = client.OwnerOf(doomed);
    fleet->servers[owner]->Shutdown();
    fleet->servers[owner].reset();

    for (size_t round = 0; round < (quick ? 2u : 8u); ++round) {
      for (size_t i = 0; i < 16; ++i) {
        ++failover_reads;
        auto a = client.Check(doomed, pairs[i].first, pairs[i].second);
        if (!a.ok() || *a != before_doomed[i]) ++failover_failures;
        ++failover_reads;
        auto b = client.Check(control, pairs[i].first, pairs[i].second);
        if (!b.ok() || *b != before_control[i]) ++failover_failures;
      }
    }
    failovers = client.retry_stats().failovers;
    fleet->ShutdownAll();
  }

  bench::Section("E20b: read failover after losing the owner");
  bench::Table fo({"reads", "failures", "client_failovers"});
  fo.AddRow({std::to_string(failover_reads), std::to_string(failover_failures),
             std::to_string(failovers)});
  fo.Print();

  // ---- Artifact ------------------------------------------------------
  uint64_t scale_errors = 0;
  for (const ScalePhase& phase : phases) {
    scale_errors += phase.transport_errors;
  }
  bench::JsonWriter json;
  json.Add("bench", std::string("cluster"));
  json.Add("quick", quick);
  json.Add("fleet_sizes", std::string("1,2,4"));
  json.Add("replicas", static_cast<uint64_t>(1));
  json.Add("sessions", static_cast<uint64_t>(kSessions));
  json.Add("batch_size", static_cast<uint64_t>(kBatchSize));
  json.Add("batches_per_session", static_cast<uint64_t>(batches_per_session));
  json.Add("pad_ms", pad_ms);
  json.Add("corpus_pairs", static_cast<uint64_t>(pairs.size()));
  json.Add("checks_per_sec_n1", phases[0].checks_per_sec);
  json.Add("checks_per_sec_n2", phases[1].checks_per_sec);
  json.Add("checks_per_sec_n4", phases[2].checks_per_sec);
  json.Add("scaling_1_to_4", scaling_1_to_4);
  json.Add("transport_errors", scale_errors);
  json.Add("verdict_mismatches", mismatches.load());
  json.Add("failover_reads", failover_reads);
  json.Add("failover_failures", failover_failures);
  json.Add("client_failovers", failovers);
  if (!json.WriteFile(out)) return Fail("cannot write artifact");
  std::printf("\nwrote %s\n", out.c_str());

  if (mismatches.load() != 0) return Fail("cluster verdicts diverged");
  if (scale_errors != 0) return Fail("transport errors in scaling phase");
  if (failover_failures != 0) return Fail("failover reads failed");
  if (failovers == 0) return Fail("failover phase never failed over");
  // The capacity model is only meaningful with full-length runs; --quick
  // keeps the correctness gates but not the scaling one.
  if (!quick && scaling_1_to_4 < 2.5) {
    return Fail("1->4 aggregate capacity scaling under 2.5x");
  }
  return 0;
}

}  // namespace
}  // namespace oodb

int main(int argc, char** argv) { return oodb::Run(argc, argv); }
