// Experiment E13 (related work, [CM93]/[ASU79]/[JK83]): QL concepts are a
// naturally occurring class of conjunctive queries with a *polynomial*
// containment problem. We check that the calculus (empty Σ) agrees with
// classical Chandra–Merlin containment, and compare costs: the
// homomorphism search is exponential in the worst case, the calculus is
// not.
#include <cstdio>
#include <memory>

#include "base/rng.h"
#include "base/strings.h"
#include "bench_util.h"
#include "calculus/subsumption.h"
#include "cq/cq.h"
#include "gen/generators.h"
#include "ql/term_factory.h"

namespace {

using namespace oodb;

// Bouquet family: C is a conjunction of agreement loops of EVEN lengths
// (2 and 4) through one object, so its frozen database only has
// even-length closed p-walks; D is an agreement loop of ODD length k.
// No homomorphism exists, and the backtracking search must explore every
// partial walk through the bouquet (~2^(k/2) of them) before giving up —
// exactly the NP behaviour [CM93] predicts for cyclic patterns. The
// calculus refutes the same containment in polynomial time.
struct BouquetCase {
  SymbolTable symbols;
  std::unique_ptr<ql::TermFactory> terms;
  std::unique_ptr<schema::Schema> sigma;
  ql::ConceptId c, d;

  explicit BouquetCase(size_t k) {
    terms = std::make_unique<ql::TermFactory>(&symbols);
    sigma = std::make_unique<schema::Schema>(terms.get());
    c = terms->And(Loop(2), Loop(4));
    d = Loop(k);
  }

  ql::ConceptId Loop(size_t n) {
    std::vector<ql::Restriction> steps(
        n, ql::Restriction{ql::Attr{symbols.Intern("p"), false},
                           terms->Top()});
    return terms->Agree(terms->MakePath(std::move(steps)));
  }
};

}  // namespace

int main() {
  bench::Section("E13a: agreement with Chandra–Merlin (random, empty Σ)");
  {
    Rng rng(90210);
    int total = 0, agree = 0;
    double calculus_us = 0, cq_us = 0;
    for (int round = 0; round < 250; ++round) {
      SymbolTable symbols;
      ql::TermFactory f(&symbols);
      schema::Schema sigma(&f);
      gen::SchemaGenOptions no_axioms;
      no_axioms.isa_prob = 0;
      no_axioms.value_restrictions = 0;
      no_axioms.typing_prob = 0;
      gen::GeneratedSchema sig = gen::GenerateSchema(&sigma, rng, no_axioms);
      ql::ConceptId c = gen::GenerateConcept(sig, &f, rng);
      ql::ConceptId d = gen::GenerateConcept(sig, &f, rng);

      calculus::SubsumptionChecker checker(sigma);
      bool via_calculus = false;
      calculus_us += bench::TimeUs([&] {
        via_calculus = *checker.Subsumes(c, d);
      });
      auto q1 = cq::ConceptToCq(f, c, &symbols);
      auto q2 = cq::ConceptToCq(f, d, &symbols);
      bool via_cq = false;
      cq_us += bench::TimeUs([&] { via_cq = cq::CqContained(*q1, *q2); });
      ++total;
      if (via_calculus == via_cq) ++agree;
    }
    std::printf("  %d/%d verdicts agree (%.1f%%); mean time: calculus "
                "%.1fus, hom. search %.1fus\n",
                agree, total, 100.0 * agree / total, calculus_us / total,
                cq_us / total);
  }

  bench::Section("E13b: bouquet family — polynomial calculus vs backtracking");
  {
    bench::Table table({"even loops |C|", "odd loop |D|", "contained",
                        "calculus(us)", "hom. search(us)"});
    std::vector<double> ks, cq_times, calc_times;
    for (size_t k : {5u, 9u, 13u, 17u, 21u, 25u, 29u, 33u}) {
      BouquetCase kase(k);
      calculus::SubsumptionChecker checker(*kase.sigma);
      bool via_calculus = false;
      double calc_us = bench::TimeUsAveraged([&] {
        via_calculus = *checker.Subsumes(kase.c, kase.d);
      });
      auto q1 = cq::ConceptToCq(*kase.terms, kase.c, &kase.symbols);
      auto q2 = cq::ConceptToCq(*kase.terms, kase.d, &kase.symbols);
      bool via_cq = false;
      double hom_us = bench::TimeUs([&] {
        via_cq = cq::CqContained(*q1, *q2);
      });
      if (via_calculus != via_cq) {
        std::printf("  DISAGREEMENT at k=%zu!\n", k);
        return 1;
      }
      table.AddRow({"2+4", std::to_string(k),
                    via_cq ? "yes" : "no", bench::Fmt(calc_us),
                    bench::Fmt(hom_us)});
      ks.push_back(static_cast<double>(k));
      cq_times.push_back(hom_us);
      calc_times.push_back(calc_us);
    }
    table.Print();
    double per_step =
        std::pow(cq_times.back() / cq_times.front(),
                 1.0 / (ks.back() - ks.front()));
    std::printf(
        "\n  homomorphism search grows ×%.2f per loop step (exponential); "
        "the calculus's\n  fitted growth is k^%.1f (polynomial).\n"
        "  paper claim: containment of general conjunctive queries is "
        "NP-hard even\n  over binary predicates [CM93], while QL "
        "containment is polynomial (Thm. 4.9).\n",
        per_step, bench::LogLogSlope(ks, calc_times));
  }
  return 0;
}
