// Tests for the DL front end: lexer, parser, analyzer, and the
// DL → SL/QL translation of Sect. 3.2 on the paper's running example.
#include <gtest/gtest.h>

#include <string>

#include "calculus/subsumption.h"
#include "dl/analyzer.h"
#include "dl/lexer.h"
#include "dl/parser.h"
#include "dl/translate.h"
#include "dl_fixture.h"
#include "ql/print.h"
#include "schema/schema.h"

namespace oodb {
namespace {

using dl::Analyze;
using dl::Model;
using dl::ParseAndAnalyze;
using dl::ParseFile;
using dl::Tokenize;

TEST(Lexer, TokenizesPunctuationAndIdents) {
  auto tokens = Tokenize("Class A isA B, C with l1: (a: {c}).(b: ?x) end");
  ASSERT_TRUE(tokens.ok()) << tokens.status();
  std::string kinds;
  for (const auto& t : *tokens) {
    kinds += t.kind == dl::TokenKind::kIdent ? 'i' : t.text.empty() ? 'E'
                                                                     : t.text[0];
  }
  // Class A isA B , C with l1 : ( a : { c } ) . ( b : ? x ) end <eof>
  EXPECT_EQ(kinds, "iiii,iii:(i:{i}).(i:?i)iE");
}

TEST(Lexer, SkipsComments) {
  auto tokens = Tokenize("a // comment until eol\nb");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);  // a, b, eof
  EXPECT_EQ((*tokens)[1].text, "b");
  EXPECT_EQ((*tokens)[1].line, 2);
}

TEST(Lexer, RejectsIllegalCharacter) {
  auto tokens = Tokenize("a $ b");
  EXPECT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kInvalidArgument);
}

TEST(Parser, ParsesTheMedicalFile) {
  auto file = ParseFile(testing::kMedicalDlSource);
  ASSERT_TRUE(file.ok()) << file.status();
  EXPECT_EQ(file->classes.size(), 11u);  // 9 schema + 2 query classes
  EXPECT_EQ(file->attributes.size(), 5u);
  const auto& query = file->classes[9];
  EXPECT_TRUE(query.is_query);
  EXPECT_EQ(query.name, "QueryPatient");
  ASSERT_EQ(query.supers.size(), 2u);
  EXPECT_EQ(query.supers[0], "Male");
  ASSERT_EQ(query.derived.size(), 2u);
  EXPECT_EQ(*query.derived[0].label, "l1");
  ASSERT_EQ(query.derived[1].steps.size(), 2u);
  EXPECT_EQ(query.derived[1].steps[0].attr, "suffers");
  EXPECT_EQ(query.derived[1].steps[0].filter_kind,
            dl::ast::PathStep::Filter::kNone);
  ASSERT_EQ(query.where.size(), 1u);
  ASSERT_NE(query.constraint, nullptr);
  EXPECT_EQ(query.constraint->kind, dl::ast::Formula::Kind::kForall);
}

TEST(Parser, ParsesConstraintPrecedence) {
  // `not A or B` must parse as (not A) or B.
  auto f = dl::ParseFormula("not (this in Doctor) or (this in Male)");
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_EQ((*f)->kind, dl::ast::Formula::Kind::kOr);
  EXPECT_EQ((*f)->children[0]->kind, dl::ast::Formula::Kind::kNot);
}

TEST(Parser, ParsesNestedParenthesizedFormula) {
  auto f = dl::ParseFormula(
      "forall d/Drug ((this takes d) and not (d = Aspirin))");
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_EQ((*f)->kind, dl::ast::Formula::Kind::kForall);
  EXPECT_EQ((*f)->children[0]->kind, dl::ast::Formula::Kind::kAnd);
}

TEST(Parser, ReportsMissingEnd) {
  auto file = ParseFile("Class A with attribute a: B");
  EXPECT_FALSE(file.ok());
}

TEST(Analyzer, ResolvesTheMedicalModel) {
  SymbolTable symbols;
  auto model = ParseAndAnalyze(testing::kMedicalDlSource, &symbols);
  ASSERT_TRUE(model.ok()) << model.status();
  const dl::ClassDef* patient = model->FindClass(symbols.Find("Patient"));
  ASSERT_NE(patient, nullptr);
  EXPECT_FALSE(patient->is_query);
  ASSERT_EQ(patient->supers.size(), 1u);
  EXPECT_EQ(patient->attrs.size(), 3u);
  ASSERT_NE(patient->constraint, nullptr);

  // The synonym `specialist` resolves to skilled_in⁻¹.
  auto attr = model->ResolveAttrName(symbols.Find("specialist"));
  ASSERT_TRUE(attr.has_value());
  EXPECT_EQ(attr->prim, symbols.Find("skilled_in"));
  EXPECT_TRUE(attr->inverted);

  const dl::ClassDef* query = model->FindClass(symbols.Find("QueryPatient"));
  ASSERT_NE(query, nullptr);
  EXPECT_TRUE(query->is_query);
  EXPECT_FALSE(query->IsStructural());  // it has a constraint clause
  const dl::ClassDef* view = model->FindClass(symbols.Find("ViewPatient"));
  ASSERT_NE(view, nullptr);
  EXPECT_TRUE(view->IsStructural());
}

TEST(Analyzer, RejectsSynonymInSchemaDeclaration) {
  SymbolTable symbols;
  auto model = ParseAndAnalyze(R"(
    Attribute a with
      inverse: b
    end a
    Class C with
      attribute
        b: C
    end C
  )",
                               &symbols);
  EXPECT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kInvalidArgument);
}

TEST(Analyzer, RejectsLabelReuseInWhere) {
  SymbolTable symbols;
  auto model = ParseAndAnalyze(R"(
    QueryClass Q with
      derived
        l1: a
        l2: b
        l3: c
      where
        l1 = l2
        l1 = l3
    end Q
  )",
                               &symbols);
  EXPECT_FALSE(model.ok());  // footnote 5: a label at most once in where
}

TEST(Analyzer, RejectsUnknownLabelInWhere) {
  SymbolTable symbols;
  auto model = ParseAndAnalyze(R"(
    QueryClass Q with
      derived
        l1: a
      where
        l1 = l9
    end Q
  )",
                               &symbols);
  EXPECT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kNotFound);
}

TEST(Analyzer, RejectsDerivedOnSchemaClass) {
  SymbolTable symbols;
  auto model = ParseAndAnalyze("Class C with derived l1: a end C", &symbols);
  EXPECT_FALSE(model.ok());
}

TEST(Analyzer, RejectsIsACycle) {
  SymbolTable symbols;
  auto model = ParseAndAnalyze(R"(
    Class A isA B with
    end A
    Class B isA A with
    end B
  )",
                               &symbols);
  EXPECT_FALSE(model.ok());
}

TEST(Analyzer, ImplicitDeclarationsWarnInLenientMode) {
  SymbolTable symbols;
  auto model = ParseAndAnalyze("Class A isA Undeclared with end A", &symbols);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_FALSE(model->warnings().empty());
  const dl::ClassDef* u = model->FindClass(symbols.Find("Undeclared"));
  ASSERT_NE(u, nullptr);
  EXPECT_TRUE(u->implicit);
}

TEST(Analyzer, StrictModeRejectsUnknownNames) {
  SymbolTable symbols;
  dl::AnalyzeOptions options;
  options.allow_implicit_declarations = false;
  auto model =
      ParseAndAnalyze("Class A isA Undeclared with end A", &symbols, options);
  EXPECT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kNotFound);
}

TEST(Analyzer, RejectsDuplicateClass) {
  SymbolTable symbols;
  auto model =
      ParseAndAnalyze("Class A with end A Class A with end A", &symbols);
  EXPECT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kAlreadyExists);
}

// --- Translation (Sect. 3.2) ----------------------------------------------

struct Translated {
  SymbolTable symbols;
  std::unique_ptr<ql::TermFactory> terms;
  std::unique_ptr<schema::Schema> sigma;
  std::unique_ptr<Model> model;
  std::unique_ptr<dl::Translator> translator;
  ql::ConceptId query = ql::kInvalidConcept;
  ql::ConceptId view = ql::kInvalidConcept;

  Translated() {
    terms = std::make_unique<ql::TermFactory>(&symbols);
    sigma = std::make_unique<schema::Schema>(terms.get());
    auto m = ParseAndAnalyze(testing::kMedicalDlSource, &symbols);
    EXPECT_TRUE(m.ok()) << m.status();
    model = std::make_unique<Model>(std::move(m).value());
    translator = std::make_unique<dl::Translator>(*model, terms.get());
    EXPECT_TRUE(translator->BuildSchema(sigma.get()).ok());
    auto q = translator->QueryConcept(symbols.Find("QueryPatient"));
    EXPECT_TRUE(q.ok()) << q.status();
    query = *q;
    auto v = translator->QueryConcept(symbols.Find("ViewPatient"));
    EXPECT_TRUE(v.ok()) << v.status();
    view = *v;
  }
};

TEST(Translate, SchemaMatchesFigure6) {
  Translated t;
  // Figure 6 lists 9 inclusion axioms; the completed schema adds typing
  // axioms for the five attribute declarations.
  // Patient: isA + 3 value restrictions + necessary = 5
  // Person: value restriction + necessary + functional = 3
  // Doctor: isA (our completion) + value restriction = 2
  // Male/Female: isA Person = 2, Disease isA Topic = 1.
  EXPECT_EQ(t.sigma->inclusions().size(), 13u);
  EXPECT_EQ(t.sigma->typings().size(), 5u);
  EXPECT_TRUE(t.sigma->IsNecessaryFor(t.symbols.Find("Patient"),
                                      t.symbols.Find("suffers")));
  EXPECT_TRUE(t.sigma->IsFunctionalFor(t.symbols.Find("Person"),
                                       t.symbols.Find("name")));
}

TEST(Translate, ConceptsMatchSection32) {
  Translated t;
  EXPECT_EQ(ql::ConceptToString(*t.terms, t.query),
            "Male ⊓ Patient ⊓ ∃(consults: Female ⊓ Doctor)"
            "(skilled_in: ⊤)(suffers^-1: ⊤) ≐ ε");
  EXPECT_EQ(ql::ConceptToString(*t.terms, t.view),
            "Patient ⊓ ∃(name: String) ⊓ ∃(consults: Doctor)"
            "(skilled_in: Disease)(suffers^-1: ⊤) ≐ ε");
}

TEST(Translate, SubsumptionHoldsThroughTheFrontEnd) {
  Translated t;
  calculus::SubsumptionChecker checker(*t.sigma);
  auto forward = checker.Subsumes(t.query, t.view);
  ASSERT_TRUE(forward.ok()) << forward.status();
  EXPECT_TRUE(*forward);
  auto backward = checker.Subsumes(t.view, t.query);
  ASSERT_TRUE(backward.ok());
  EXPECT_FALSE(*backward);
}

TEST(Translate, QueryClassSupersAreInlined) {
  SymbolTable symbols;
  ql::TermFactory terms(&symbols);
  auto model = ParseAndAnalyze(R"(
    Class A with
    end A
    QueryClass Q1 isA A with
      derived
        (a: A)
    end Q1
    QueryClass Q2 isA Q1 with
      derived
        (b: A)
    end Q2
  )",
                               &symbols);
  ASSERT_TRUE(model.ok()) << model.status();
  dl::Translator translator(*model, &terms);
  auto q2 = translator.QueryConcept(symbols.Find("Q2"));
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(ql::ConceptToString(terms, *q2), "A ⊓ ∃(a: A) ⊓ ∃(b: A)");
}

TEST(Translate, PathVariablesAreSkolemized) {
  SymbolTable symbols;
  ql::TermFactory terms(&symbols);
  auto model = ParseAndAnalyze(R"(
    QueryClass Q with
      derived
        (a: ?x).(b: ?x)
    end Q
  )",
                               &symbols);
  ASSERT_TRUE(model.ok()) << model.status();
  dl::Translator translator(*model, &terms);
  auto q = translator.QueryConcept(symbols.Find("Q"));
  ASSERT_TRUE(q.ok());
  // Both occurrences of ?x become the same skolem constant.
  std::string rendered = ql::ConceptToString(terms, *q);
  EXPECT_NE(rendered.find("{sk_x#"), std::string::npos) << rendered;
  size_t first = rendered.find("{sk_x#");
  size_t second = rendered.find("{sk_x#", first + 1);
  EXPECT_NE(second, std::string::npos);
  EXPECT_EQ(rendered.substr(first, 8), rendered.substr(second, 8));
}

TEST(Translate, Figure2FormulasForPatient) {
  Translated t;
  auto formulas = t.translator->SchemaClassToFol(t.symbols.Find("Patient"));
  ASSERT_TRUE(formulas.ok()) << formulas.status();
  std::vector<std::string> rendered;
  for (const auto& f : *formulas) {
    rendered.push_back(ql::FormulaToString(*t.terms, f));
  }
  ASSERT_EQ(rendered.size(), 6u);
  EXPECT_EQ(rendered[0], "∀x. Patient(x) → Person(x)");
  EXPECT_EQ(rendered[1],
            "∀x. ∀y. (Patient(x) ∧ takes(x, y)) → Drug(y)");
  EXPECT_EQ(rendered[4], "∀x. Patient(x) → (∃y. suffers(x, y))");
  EXPECT_EQ(rendered[5], "∀x. Patient(x) → ¬Doctor(x)");
}

TEST(Translate, Figure2FormulasForSkilledIn) {
  Translated t;
  auto formulas = t.translator->AttributeToFol(t.symbols.Find("skilled_in"));
  ASSERT_TRUE(formulas.ok()) << formulas.status();
  ASSERT_EQ(formulas->size(), 2u);
  EXPECT_EQ(ql::FormulaToString(*t.terms, (*formulas)[0]),
            "∀x. ∀y. skilled_in(x, y) → (Person(x) ∧ Topic(y))");
  EXPECT_EQ(ql::FormulaToString(*t.terms, (*formulas)[1]),
            "∀x. ∀y. (skilled_in(x, y) → specialist(y, x)) ∧ "
            "(specialist(y, x) → skilled_in(x, y))");
}

TEST(Translate, Figure4FormulaForQueryPatient) {
  Translated t;
  auto formula = t.translator->QueryClassToFol(t.symbols.Find("QueryPatient"));
  ASSERT_TRUE(formula.ok()) << formula.status();
  std::string rendered = ql::FormulaToString(*t.terms, *formula);
  // Spot-check the shape of Figure 4: superclass atoms, the labeled
  // paths, the where equality and the constraint clause.
  EXPECT_NE(rendered.find("Male(t)"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("Patient(t)"), std::string::npos);
  EXPECT_NE(rendered.find("consults(t, l1)"), std::string::npos);
  EXPECT_NE(rendered.find("Female(l1)"), std::string::npos);
  EXPECT_NE(rendered.find("skilled_in(l2,"), std::string::npos);
  EXPECT_NE(rendered.find("l1 ≐ l2"), std::string::npos);
  EXPECT_NE(rendered.find("Drug(d)"), std::string::npos);
  EXPECT_NE(rendered.find("d ≐ Aspirin"), std::string::npos);
}

}  // namespace
}  // namespace oodb
