file(REMOVE_RECURSE
  "liboodb_cq.a"
)
