#include "calculus/services.h"

#include <algorithm>

#include "base/strings.h"
#include "ql/print.h"

namespace oodb::calculus {

namespace {

// Flattens an ⊓-tree into its conjunct list.
void Conjuncts(const ql::TermFactory& f, ql::ConceptId c,
               std::vector<ql::ConceptId>* out) {
  const ql::ConceptNode& n = f.node(c);
  if (n.kind == ql::ConceptKind::kAnd) {
    Conjuncts(f, n.lhs, out);
    Conjuncts(f, n.rhs, out);
  } else {
    out->push_back(c);
  }
}

}  // namespace

Result<ql::ConceptId> MinimizeConcept(const SubsumptionChecker& checker,
                                      ql::TermFactory* terms,
                                      ql::ConceptId c) {
  std::vector<ql::ConceptId> conjuncts;
  Conjuncts(*terms, c, &conjuncts);

  // Phase 1: drop conjuncts implied by the rest.
  bool changed = true;
  while (changed && conjuncts.size() > 1) {
    changed = false;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      std::vector<ql::ConceptId> rest;
      for (size_t j = 0; j < conjuncts.size(); ++j) {
        if (j != i) rest.push_back(conjuncts[j]);
      }
      ql::ConceptId candidate = terms->AndAll(rest);
      OODB_ASSIGN_OR_RETURN(bool implied,
                            checker.Subsumes(candidate, conjuncts[i]));
      if (implied) {
        conjuncts = std::move(rest);
        changed = true;
        break;
      }
    }
  }

  // Phase 2: weaken path filters to ⊤ where the rest of the concept
  // already implies them (the weakened whole must subsume-back).
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    const ql::ConceptNode n = terms->node(conjuncts[i]);
    if (n.kind != ql::ConceptKind::kExists &&
        n.kind != ql::ConceptKind::kAgree) {
      continue;
    }
    std::vector<ql::Restriction> steps = terms->path(n.path);
    bool any = false;
    for (size_t k = 0; k < steps.size(); ++k) {
      if (steps[k].filter == terms->Top()) continue;
      std::vector<ql::Restriction> weakened_steps = steps;
      weakened_steps[k].filter = terms->Top();
      ql::PathId weakened_path = terms->MakePath(weakened_steps);
      ql::ConceptId weakened_conjunct =
          n.kind == ql::ConceptKind::kExists ? terms->Exists(weakened_path)
                                             : terms->Agree(weakened_path);
      std::vector<ql::ConceptId> candidate_list = conjuncts;
      candidate_list[i] = weakened_conjunct;
      ql::ConceptId candidate = terms->AndAll(candidate_list);
      // Weakening gives c ⊑ candidate for free; equality needs the
      // converse.
      OODB_ASSIGN_OR_RETURN(bool back, checker.Subsumes(candidate, c));
      if (back) {
        steps = std::move(weakened_steps);
        any = true;
      }
    }
    if (any) {
      ql::PathId path = terms->MakePath(std::move(steps));
      conjuncts[i] = n.kind == ql::ConceptKind::kExists
                         ? terms->Exists(path)
                         : terms->Agree(path);
    }
  }

  ql::ConceptId result = terms->AndAll(conjuncts);
  // Safety net: the result must be Σ-equivalent to the input.
  OODB_ASSIGN_OR_RETURN(bool equivalent, checker.Equivalent(result, c));
  if (!equivalent) return c;
  return result;
}

Result<ql::ConceptId> CommonSubsumer(const SubsumptionChecker& checker,
                                     ql::TermFactory* terms,
                                     const std::vector<ql::ConceptId>& cs) {
  if (cs.empty()) return terms->Top();
  // Candidate conjuncts: every top-level conjunct of every input.
  std::vector<ql::ConceptId> candidates;
  for (ql::ConceptId c : cs) Conjuncts(*terms, c, &candidates);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  std::vector<ql::ConceptId> kept;
  for (ql::ConceptId candidate : candidates) {
    bool common = true;
    for (ql::ConceptId c : cs) {
      OODB_ASSIGN_OR_RETURN(bool sub, checker.Subsumes(c, candidate));
      if (!sub) {
        common = false;
        break;
      }
    }
    if (common) kept.push_back(candidate);
  }
  return MinimizeConcept(checker, terms, terms->AndAll(kept));
}

Result<std::optional<ql::ConceptId>> ResidualFilter(
    const SubsumptionChecker& checker, ql::TermFactory* terms,
    ql::ConceptId q, ql::ConceptId v) {
  OODB_ASSIGN_OR_RETURN(bool subsumed, checker.Subsumes(q, v));
  if (!subsumed) return std::optional<ql::ConceptId>();

  std::vector<ql::ConceptId> residual;
  Conjuncts(*terms, q, &residual);
  // Greedy deletion: Q ⊑ V and Q ⊑ ⋀R' give Q ⊑ V ⊓ R' for free, so only
  // the converse V ⊓ R' ⊑ Q needs checking.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < residual.size(); ++i) {
      std::vector<ql::ConceptId> rest;
      for (size_t j = 0; j < residual.size(); ++j) {
        if (j != i) rest.push_back(residual[j]);
      }
      ql::ConceptId candidate = terms->And(v, terms->AndAll(rest));
      OODB_ASSIGN_OR_RETURN(bool exact, checker.Subsumes(candidate, q));
      if (exact) {
        residual = std::move(rest);
        changed = true;
        break;
      }
    }
  }
  return std::optional<ql::ConceptId>(terms->AndAll(residual));
}

Status Classifier::Add(Symbol name, ql::ConceptId concept_id) {
  if (nodes_.count(name) > 0) {
    return AlreadyExistsError("concept name already classified");
  }
  Node node;
  node.concept_id = concept_id;
  nodes_.emplace(name, std::move(node));
  names_.push_back(name);
  classified_ = false;
  return Status::Ok();
}

Status Classifier::Classify() {
  const size_t n = names_.size();
  // Full subsumption matrix (n² checks, each polynomial).
  std::vector<std::vector<bool>> below(n, std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) {
        below[i][j] = true;
        continue;
      }
      OODB_ASSIGN_OR_RETURN(
          bool sub, checker_.Subsumes(nodes_.at(names_[i]).concept_id,
                                      nodes_.at(names_[j]).concept_id));
      below[i][j] = sub;
    }
  }
  for (auto& [name, node] : nodes_) {
    node.parents.clear();
    node.children.clear();
    node.equivalents.clear();
  }
  for (size_t i = 0; i < n; ++i) {
    Node& node = nodes_.at(names_[i]);
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (below[i][j] && below[j][i]) {
        node.equivalents.push_back(names_[j]);
        continue;
      }
      if (!below[i][j]) continue;
      // j is a strict subsumer of i; direct iff no strict k between.
      bool direct = true;
      for (size_t k = 0; k < n && direct; ++k) {
        if (k == i || k == j) continue;
        if (below[i][k] && !below[k][i] && below[k][j] && !below[j][k]) {
          direct = false;
        }
      }
      if (direct) {
        node.parents.push_back(names_[j]);
        nodes_.at(names_[j]).children.push_back(names_[i]);
      }
    }
  }
  classified_ = true;
  return Status::Ok();
}

std::vector<Symbol> Classifier::Parents(Symbol name) const {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? std::vector<Symbol>{} : it->second.parents;
}

std::vector<Symbol> Classifier::Children(Symbol name) const {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? std::vector<Symbol>{} : it->second.children;
}

std::vector<Symbol> Classifier::Equivalents(Symbol name) const {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? std::vector<Symbol>{} : it->second.equivalents;
}

Result<std::vector<Symbol>> Classifier::SubsumersOf(
    ql::ConceptId concept_id) const {
  // Collect subsumers, then order children-before-parents so callers can
  // take the first (most specific) hit.
  std::vector<Symbol> subsumers;
  for (Symbol name : names_) {
    OODB_ASSIGN_OR_RETURN(
        bool sub, checker_.Subsumes(concept_id, nodes_.at(name).concept_id));
    if (sub) subsumers.push_back(name);
  }
  std::vector<Symbol> ordered;
  std::unordered_map<Symbol, bool> placed;
  // Repeatedly emit subsumers all of whose (subsumer-)children are placed.
  while (ordered.size() < subsumers.size()) {
    bool progress = false;
    for (Symbol name : subsumers) {
      if (placed[name]) continue;
      bool ready = true;
      for (Symbol child : nodes_.at(name).children) {
        if (std::find(subsumers.begin(), subsumers.end(), child) !=
                subsumers.end() &&
            !placed[child]) {
          ready = false;
          break;
        }
      }
      if (ready) {
        ordered.push_back(name);
        placed[name] = true;
        progress = true;
      }
    }
    if (!progress) {  // equivalence cycles: emit the rest in input order
      for (Symbol name : subsumers) {
        if (!placed[name]) {
          ordered.push_back(name);
          placed[name] = true;
        }
      }
    }
  }
  return ordered;
}

std::string Classifier::ToString(const SymbolTable& symbols) const {
  std::string out;
  for (Symbol name : names_) {
    const Node& node = nodes_.at(name);
    out += StrCat(symbols.Name(name), "\n");
    if (!node.equivalents.empty()) {
      out += StrCat("  ≡ ", StrJoinMapped(node.equivalents, ", ",
                                          [&](Symbol s) {
                                            return symbols.Name(s);
                                          }),
                    "\n");
    }
    out += StrCat("  parents: ",
                  node.parents.empty()
                      ? "⊤"
                      : StrJoinMapped(node.parents, ", ",
                                      [&](Symbol s) {
                                        return symbols.Name(s);
                                      }),
                  "\n");
  }
  return out;
}

}  // namespace oodb::calculus
