# Empty dependencies file for oodb_base.
# This may be replaced when dependencies are built.
