// E17: optimizer-daemon load benchmark. Drives the src/server/ epoll
// daemon over real loopback sockets and compares the two wire protocols:
//
//   A. text baseline      — synchronous CHECK round trips, N clients;
//   B. binary pipelining  — the length-prefixed framing at pipeline
//                           depths 1/8/32 (sliding window per client);
//   C. batched CHECK      — one BCHECK frame carrying many pairs;
//   D. connection scale   — 1000 idle connections held open while an
//                           active pipelined client runs (reduced with
//                           --quick);
//   E. overload           — shrunken admission bound, BUSY must be
//                           observable under saturation.
//
// Every wire verdict (text, binary, batched) is verified against
// precomputed in-process SubsumptionChecker results. Writes
// BENCH_server.json; exits non-zero on any transport error, verdict
// mismatch, a binary-best-vs-text speedup below 3x, a lost idle
// connection, or if the overload phase never sees BUSY.
//
// usage: bench_server [--quick] [--clients=N] [--out=path]
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "base/strings.h"
#include "bench_util.h"
#include "calculus/subsumption.h"
#include "dl/analyzer.h"
#include "dl/translate.h"
#include "gen/dl_gen.h"
#include "ql/term_factory.h"
#include "schema/schema.h"
#include "server/client.h"
#include "server/server.h"

namespace oodb {
namespace {

// The same parse → translate → check pipeline the daemon runs, used to
// precompute the expected verdict for every request in the replay.
struct Reference {
  SymbolTable symbols;
  std::unique_ptr<ql::TermFactory> terms;
  std::unique_ptr<schema::Schema> sigma;
  std::unique_ptr<dl::Model> model;
  std::unique_ptr<dl::Translator> translator;
  std::unique_ptr<calculus::SubsumptionChecker> checker;

  static std::unique_ptr<Reference> FromSource(const std::string& source) {
    auto ref = std::make_unique<Reference>();
    ref->terms = std::make_unique<ql::TermFactory>(&ref->symbols);
    ref->sigma = std::make_unique<schema::Schema>(ref->terms.get());
    auto parsed = dl::ParseAndAnalyze(source, &ref->symbols);
    if (!parsed.ok()) return nullptr;
    ref->model = std::make_unique<dl::Model>(*std::move(parsed));
    ref->translator =
        std::make_unique<dl::Translator>(*ref->model, ref->terms.get());
    if (!ref->translator->BuildSchema(ref->sigma.get()).ok()) return nullptr;
    ref->checker = std::make_unique<calculus::SubsumptionChecker>(*ref->sigma);
    return ref;
  }

  Result<bool> Check(const std::string& c, const std::string& d) {
    auto concept_of = [this](const std::string& name) -> Result<ql::ConceptId> {
      Symbol s = symbols.Find(name);
      const dl::ClassDef* def = s.valid() ? model->FindClass(s) : nullptr;
      if (def == nullptr) return NotFoundError("no class");
      if (!def->is_query) return terms->Primitive(s);
      return translator->QueryConcept(s);
    };
    OODB_ASSIGN_OR_RETURN(ql::ConceptId cc, concept_of(c));
    OODB_ASSIGN_OR_RETURN(ql::ConceptId dd, concept_of(d));
    return checker->Subsumes(cc, dd);
  }
};

struct Request {
  std::string c, d;  // operand class names
  std::string line;  // "CHECK bench C D"
  bool expected;     // precomputed in-process verdict
};

double Percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted_us.size()));
  if (idx >= sorted_us.size()) idx = sorted_us.size() - 1;
  return sorted_us[idx];
}

int Fail(const char* what) {
  std::fprintf(stderr, "bench_server: %s\n", what);
  return 1;
}

struct PhaseResult {
  uint64_t completed = 0;
  double wall_s = 0, rps = 0, p50 = 0, p95 = 0, p99 = 0;
};

PhaseResult Summarize(std::vector<std::vector<double>>& latencies,
                      double wall_s) {
  std::vector<double> merged;
  for (auto& v : latencies) merged.insert(merged.end(), v.begin(), v.end());
  std::sort(merged.begin(), merged.end());
  PhaseResult r;
  r.completed = merged.size();
  r.wall_s = wall_s;
  r.rps = wall_s > 0 ? static_cast<double>(merged.size()) / wall_s : 0.0;
  r.p50 = Percentile(merged, 0.50);
  r.p95 = Percentile(merged, 0.95);
  r.p99 = Percentile(merged, 0.99);
  return r;
}

int Run(int argc, char** argv) {
  bool quick = false;
  size_t clients = 0;
  std::string out = "BENCH_server.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--clients=", 0) == 0) {
      clients = static_cast<size_t>(std::stoul(arg.substr(10)));
    } else if (arg.rfind("--out=", 0) == 0) {
      out = arg.substr(6);
    } else {
      std::fprintf(stderr, "usage: bench_server [--quick] [--clients=N] "
                           "[--out=path]\n");
      return 64;
    }
  }
  if (clients == 0) clients = quick ? 4 : 6;
  const size_t per_client = quick ? 250 : 1500;
  const size_t idle_target = quick ? 128 : 1000;

  // The connection-scale phase needs idle_target + active fds in this
  // process alone; lift the soft fd limit to the hard one up front.
  rlimit nofile{};
  if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0 &&
      nofile.rlim_cur < nofile.rlim_max) {
    nofile.rlim_cur = nofile.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &nofile);
  }

  // ---- Seeded corpus with precomputed in-process verdicts ------------
  Rng rng(7);
  gen::DlGenOptions gen_options;
  gen_options.num_classes = 8;
  gen_options.num_attrs = 4;
  gen_options.num_queries = 8;
  gen::GeneratedDl dl = gen::GenerateDlSource(rng, gen_options);
  auto ref = Reference::FromSource(dl.source);
  if (ref == nullptr) return Fail("generated schema failed to parse");

  std::vector<Request> corpus;
  auto add_pair = [&](const std::string& c, const std::string& d) {
    auto expected = ref->Check(c, d);
    if (!expected.ok()) return;  // both sides would reject it identically
    corpus.push_back({c, d, StrCat("CHECK bench ", c, " ", d), *expected});
  };
  for (const std::string& c : dl.query_names) {
    for (const std::string& d : dl.query_names) add_pair(c, d);
    for (const std::string& d : dl.class_names) add_pair(c, d);
  }
  if (corpus.size() < 64) return Fail("corpus unexpectedly small");
  std::printf("corpus: %zu CHECK requests over %zu queries, %zu classes\n",
              corpus.size(), dl.query_names.size(), dl.class_names.size());

  server::ServerOptions options;
  options.num_threads = 2;
  options.max_pending = 256;
  server::Server daemon(options);
  auto port = daemon.Start();
  if (!port.ok()) return Fail(port.status().message().c_str());

  {
    auto loader = server::Client::Connect("127.0.0.1", *port);
    if (!loader.ok()) return Fail("cannot connect loader client");
    auto loaded = loader->Load("bench", dl.source);
    if (!loaded.ok()) return Fail("LOAD failed");
  }

  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> mismatches{0};

  // ---- Phase A: text baseline (synchronous round trips) --------------
  PhaseResult text;
  {
    std::vector<std::vector<double>> latencies(clients);
    std::vector<std::thread> threads;
    const auto wall_start = std::chrono::steady_clock::now();
    for (size_t t = 0; t < clients; ++t) {
      threads.emplace_back([&, t] {
        auto client = server::Client::Connect("127.0.0.1", *port);
        if (!client.ok()) {
          errors.fetch_add(per_client, std::memory_order_relaxed);
          return;
        }
        latencies[t].reserve(per_client);
        for (size_t i = 0; i < per_client; ++i) {
          // Stagger the replay so clients do not walk the corpus in
          // lockstep (which would serialize on the same memo shard).
          const Request& req = corpus[(i * clients + t) % corpus.size()];
          const auto start = std::chrono::steady_clock::now();
          auto body = client->Roundtrip(req.line);
          const auto end = std::chrono::steady_clock::now();
          if (!body.ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if ((*body == "subsumed=true") != req.expected) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          latencies[t].push_back(
              std::chrono::duration<double, std::micro>(end - start).count());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    text = Summarize(latencies,
                     std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count());
  }

  // ---- Phase B: binary framing, pipeline depth sweep ------------------
  // Each client keeps `depth` CHECK frames in flight over one connection
  // (sliding window: await the oldest before submitting the next), so a
  // request's recorded latency spans submit → reply including its queue
  // time behind the window.
  const std::vector<size_t> kDepths = {1, 8, 32};
  std::vector<PhaseResult> binary(kDepths.size());
  for (size_t di = 0; di < kDepths.size(); ++di) {
    const size_t depth = kDepths[di];
    std::vector<std::vector<double>> latencies(clients);
    std::vector<std::thread> threads;
    const auto wall_start = std::chrono::steady_clock::now();
    for (size_t t = 0; t < clients; ++t) {
      threads.emplace_back([&, t, depth] {
        auto client = server::Client::Connect("127.0.0.1", *port);
        if (!client.ok() || !client->EnableBinary().ok()) {
          errors.fetch_add(per_client, std::memory_order_relaxed);
          return;
        }
        latencies[t].reserve(per_client);
        struct Inflight {
          uint64_t id;
          std::chrono::steady_clock::time_point submitted;
          bool expected;
        };
        std::deque<Inflight> window;
        auto retire_front = [&] {
          Inflight front = window.front();
          window.pop_front();
          auto body = client->Await(front.id);
          const auto end = std::chrono::steady_clock::now();
          if (!body.ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          if ((*body == "subsumed=true") != front.expected) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          latencies[t].push_back(std::chrono::duration<double, std::micro>(
                                     end - front.submitted)
                                     .count());
        };
        for (size_t i = 0; i < per_client; ++i) {
          if (window.size() >= depth) retire_front();
          const Request& req = corpus[(i * clients + t) % corpus.size()];
          const auto start = std::chrono::steady_clock::now();
          auto id = client->SubmitCheck("bench", req.c, req.d);
          if (!id.ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          window.push_back({*id, start, req.expected});
        }
        while (!window.empty()) retire_front();
      });
    }
    for (std::thread& t : threads) t.join();
    binary[di] = Summarize(latencies,
                           std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - wall_start)
                               .count());
  }

  // ---- Phase C: batched CHECK (one BCHECK frame per round trip) -------
  const size_t batch_size = 256;
  const size_t batches = quick ? 16 : 64;
  double bcheck_checks_per_sec = 0;
  uint64_t bcheck_pairs_total = 0;
  {
    auto client = server::Client::Connect("127.0.0.1", *port);
    if (!client.ok() || !client->EnableBinary().ok()) {
      return Fail("cannot connect BCHECK client");
    }
    std::vector<std::pair<std::string, std::string>> pairs;
    std::vector<bool> expected;
    pairs.reserve(batch_size);
    expected.reserve(batch_size);
    const auto wall_start = std::chrono::steady_clock::now();
    for (size_t b = 0; b < batches; ++b) {
      pairs.clear();
      expected.clear();
      for (size_t i = 0; i < batch_size; ++i) {
        const Request& req = corpus[(b * batch_size + i) % corpus.size()];
        pairs.emplace_back(req.c, req.d);
        expected.push_back(req.expected);
      }
      auto verdicts = client->CheckBatch("bench", pairs);
      if (!verdicts.ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      for (size_t i = 0; i < batch_size; ++i) {
        if ((*verdicts)[i] != expected[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
      bcheck_pairs_total += batch_size;
    }
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
    bcheck_checks_per_sec =
        wall_s > 0 ? static_cast<double>(bcheck_pairs_total) / wall_s : 0.0;
  }

  // ---- Phase D: connection scale — idle herd + one active client ------
  size_t idle_open = 0, idle_alive = 0;
  double active_rps_with_idle = 0;
  {
    std::vector<server::Client> herd;
    herd.reserve(idle_target);
    for (size_t i = 0; i < idle_target; ++i) {
      auto idle = server::Client::Connect("127.0.0.1", *port);
      if (!idle.ok()) break;
      herd.push_back(std::move(*idle));
    }
    idle_open = herd.size();

    auto active = server::Client::Connect("127.0.0.1", *port);
    if (!active.ok() || !active->EnableBinary().ok()) {
      return Fail("cannot connect active client amid idle herd");
    }
    const size_t depth = 32;
    std::deque<std::pair<uint64_t, bool>> window;
    uint64_t done = 0;
    const auto wall_start = std::chrono::steady_clock::now();
    auto retire_front = [&] {
      auto [id, want] = window.front();
      window.pop_front();
      auto body = active->Await(id);
      if (!body.ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if ((*body == "subsumed=true") != want) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
      ++done;
    };
    for (size_t i = 0; i < per_client * 2; ++i) {
      if (window.size() >= depth) retire_front();
      const Request& req = corpus[i % corpus.size()];
      auto id = active->SubmitCheck("bench", req.c, req.d);
      if (!id.ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      window.emplace_back(*id, req.expected);
    }
    while (!window.empty()) retire_front();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
    active_rps_with_idle =
        wall_s > 0 ? static_cast<double>(done) / wall_s : 0.0;

    // Every idle connection must still be usable after the storm.
    for (auto& idle : herd) idle_alive += idle.Ping().ok() ? 1 : 0;
  }
  const server::ServerStats live = daemon.stats();
  daemon.Shutdown();

  bench::Section("E17: daemon protocol comparison (text vs binary)");
  bench::Table table({"phase", "clients", "completed", "rps", "p50us",
                      "p95us", "p99us"});
  table.AddRow({"text", std::to_string(clients),
                std::to_string(text.completed), bench::Fmt(text.rps, 0),
                bench::Fmt(text.p50), bench::Fmt(text.p95),
                bench::Fmt(text.p99)});
  for (size_t di = 0; di < kDepths.size(); ++di) {
    table.AddRow({StrCat("binary/d", kDepths[di]), std::to_string(clients),
                  std::to_string(binary[di].completed),
                  bench::Fmt(binary[di].rps, 0), bench::Fmt(binary[di].p50),
                  bench::Fmt(binary[di].p95), bench::Fmt(binary[di].p99)});
  }
  table.Print();
  std::printf("bcheck: %llu pairs in batches of %zu -> %.0f checks/s\n",
              static_cast<unsigned long long>(bcheck_pairs_total), batch_size,
              bcheck_checks_per_sec);
  std::printf("idle herd: %zu opened, %zu alive after storm, "
              "active %.0f rps alongside\n",
              idle_open, idle_alive, active_rps_with_idle);

  size_t best = 0;
  for (size_t di = 1; di < kDepths.size(); ++di) {
    if (binary[di].rps > binary[best].rps) best = di;
  }
  // Two speedups: pipelined single CHECKs, and the binary protocol's
  // best per-check throughput (one BCHECK frame amortizes dispatch over
  // the whole batch, so it is the protocol's throughput ceiling). The
  // 3x gate is on the latter — on a one-core host the text baseline is
  // itself CPU-saturated, so single-frame pipelining alone tops out
  // near the syscall savings.
  const double speedup_pipelined =
      text.rps > 0 ? binary[best].rps / text.rps : 0.0;
  const double binary_best_checks =
      std::max(binary[best].rps, bcheck_checks_per_sec);
  const double speedup =
      text.rps > 0 ? binary_best_checks / text.rps : 0.0;
  std::printf("binary best: depth %zu at %.0f rps = %.2fx text; "
              "best per-check %.0f/s = %.2fx text\n",
              kDepths[best], binary[best].rps, speedup_pipelined,
              binary_best_checks, speedup);

  // ---- Phase E: overload — BUSY must be observable -------------------
  // One worker, admission bound 1: while a SLEEP blocks the worker any
  // concurrent request must be answered BUSY instead of queueing.
  server::ServerOptions tight;
  tight.num_threads = 1;
  tight.max_pending = 1;
  server::Server small(tight);
  auto small_port = small.Start();
  if (!small_port.ok()) return Fail("overload daemon failed to start");
  std::atomic<uint64_t> busy{0};
  std::atomic<uint64_t> overload_ok{0};
  std::atomic<uint64_t> overload_errors{0};
  {
    std::vector<std::thread> stormers;
    const size_t storm_threads = 4;
    const size_t storm_requests = quick ? 20 : 60;
    for (size_t t = 0; t < storm_threads; ++t) {
      stormers.emplace_back([&] {
        auto client = server::Client::Connect("127.0.0.1", *small_port);
        if (!client.ok()) {
          overload_errors.fetch_add(storm_requests,
                                    std::memory_order_relaxed);
          return;
        }
        for (size_t i = 0; i < storm_requests; ++i) {
          auto reply = client->Roundtrip("SLEEP 20");
          if (reply.ok()) {
            overload_ok.fetch_add(1, std::memory_order_relaxed);
          } else if (reply.status().code() ==
                     StatusCode::kResourceExhausted) {
            busy.fetch_add(1, std::memory_order_relaxed);
          } else {
            overload_errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& t : stormers) t.join();
  }
  small.Shutdown();

  bench::Section("E17b: overload backpressure (1 worker, bound 1)");
  bench::Table storm({"requests", "served", "busy", "errors"});
  storm.AddRow({std::to_string(4 * (quick ? 20 : 60)),
                std::to_string(overload_ok.load()),
                std::to_string(busy.load()),
                std::to_string(overload_errors.load())});
  storm.Print();

  // ---- Artifact ------------------------------------------------------
  bench::JsonWriter json;
  json.Add("bench", std::string("server_load"));
  json.Add("quick", quick);
  json.Add("protocol_modes", std::string("text,binary"));
  json.Add("pipeline_depths", std::string("1,8,32"));
  json.Add("clients", static_cast<uint64_t>(clients));
  json.Add("requests_per_client", static_cast<uint64_t>(per_client));
  json.Add("corpus_size", static_cast<uint64_t>(corpus.size()));
  json.Add("transport_errors", errors.load());
  json.Add("verdict_mismatches", mismatches.load());
  json.Add("text_requests", text.completed);
  json.Add("text_rps", text.rps);
  json.Add("text_p50_us", text.p50);
  json.Add("text_p99_us", text.p99);
  for (size_t di = 0; di < kDepths.size(); ++di) {
    const std::string suffix = StrCat("_depth", kDepths[di]);
    json.Add(StrCat("binary_rps", suffix), binary[di].rps);
    json.Add(StrCat("binary_p50_us", suffix), binary[di].p50);
    json.Add(StrCat("binary_p99_us", suffix), binary[di].p99);
  }
  json.Add("binary_best_depth", static_cast<uint64_t>(kDepths[best]));
  json.Add("binary_best_rps", binary[best].rps);
  json.Add("binary_depth32_vs_depth1",
           binary[0].rps > 0 ? binary[2].rps / binary[0].rps : 0.0);
  json.Add("speedup_pipelined", speedup_pipelined);
  json.Add("binary_best_checks_per_sec", binary_best_checks);
  json.Add("speedup_vs_text", speedup);
  json.Add("bcheck_batch_size", static_cast<uint64_t>(batch_size));
  json.Add("bcheck_pairs_total", bcheck_pairs_total);
  json.Add("bcheck_checks_per_sec", bcheck_checks_per_sec);
  json.Add("idle_connections", static_cast<uint64_t>(idle_open));
  json.Add("idle_alive_after_storm", static_cast<uint64_t>(idle_alive));
  json.Add("active_rps_with_idle", active_rps_with_idle);
  json.Add("server_ok", live.ok);
  json.Add("server_errors", live.errors);
  json.Add("server_busy", live.busy);
  json.Add("overload_served", overload_ok.load());
  json.Add("overload_busy", busy.load());
  json.Add("overload_errors", overload_errors.load());
  if (!json.WriteFile(out)) return Fail("cannot write artifact");
  std::printf("\nwrote %s\n", out.c_str());

  if (errors.load() != 0) return Fail("transport errors");
  if (mismatches.load() != 0) return Fail("wire verdicts diverged");
  if (speedup < 3.0) {
    return Fail("binary per-check throughput under 3x text rps");
  }
  // Deep pipelines are what the writev-gathered flush exists for: depth
  // 32 must never fall below depth 1.
  if (binary[2].rps < binary[0].rps) {
    return Fail("depth-32 binary throughput regressed below depth-1");
  }
  if (idle_open < idle_target) return Fail("could not open the idle herd");
  if (idle_alive != idle_open) return Fail("idle connections were dropped");
  if (overload_errors.load() != 0) return Fail("errors in overload phase");
  if (busy.load() == 0) return Fail("overload never observed BUSY");
  return 0;
}

}  // namespace
}  // namespace oodb

int main(int argc, char** argv) { return oodb::Run(argc, argv); }
