// Synchronization primitives wired for Clang Thread Safety Analysis.
//
// Every lock in the tree is a base::Mutex or base::SharedMutex, every
// guarded member carries GUARDED_BY, and every lock-requiring method
// carries REQUIRES / REQUIRES_SHARED, so `-Wthread-safety` proves lock
// discipline at compile time (see docs/concurrency.md; CI builds with
// `-Werror=thread-safety` under -DOODBSUB_LINT=ON). On non-Clang
// compilers the attributes expand to nothing and the wrappers are
// zero-cost veneers over <mutex>/<shared_mutex>.
#ifndef OODB_BASE_SYNC_H_
#define OODB_BASE_SYNC_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---- Thread-safety annotation macros ---------------------------------------
//
// The full set from the Clang Thread Safety Analysis documentation.
// Attribute spellings follow the modern capability-based names; the
// macros compile to no-ops on compilers without the attributes.

#if defined(__clang__) && !defined(SWIG)
#define OODB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define OODB_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

// Type attributes: a capability type, and a scoped (RAII) capability.
#define CAPABILITY(x) OODB_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY OODB_THREAD_ANNOTATION(scoped_lockable)

// Data members: protected by a capability (directly / through a pointer).
#define GUARDED_BY(x) OODB_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) OODB_THREAD_ANNOTATION(pt_guarded_by(x))

// Lock-ordering declarations (checked under -Wthread-safety-beta).
#define ACQUIRED_BEFORE(...) OODB_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) OODB_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function preconditions: the caller must hold the capability.
#define REQUIRES(...) OODB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  OODB_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Function effects: acquire / release the capability.
#define ACQUIRE(...) OODB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  OODB_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) OODB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  OODB_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  OODB_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  OODB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  OODB_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

// The function must NOT be called with the capability held.
#define EXCLUDES(...) OODB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Runtime assertions and accessor annotations.
#define ASSERT_CAPABILITY(x) OODB_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  OODB_THREAD_ANNOTATION(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) OODB_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for functions the analysis cannot follow.
#define NO_THREAD_SAFETY_ANALYSIS \
  OODB_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace oodb::base {

class CondVar;

// Exclusive mutex. Prefer the scoped MutexLock; the raw Lock/Unlock
// entry points exist for hand-over-hand code (ThreadPool's worker loop,
// Server::Wait) where a scope does not match the critical section.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// Reader/writer mutex: one writer or many readers.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// RAII exclusive lock of a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// RAII shared (reader) lock of a SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderLock() RELEASE() { mu_->UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// RAII exclusive (writer) lock of a SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~WriterLock() RELEASE() { mu_->Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// Condition variable over base::Mutex. No predicate overload on purpose:
// the analysis does not propagate REQUIRES into lambdas, so callers spell
// the standard `while (!cond) cv.Wait(mu);` loop inside the annotated
// critical section.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, blocks, and reacquires `mu` before
  // returning; may wake spuriously (loop on the condition).
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the mutex
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace oodb::base

#endif  // OODB_BASE_SYNC_H_
