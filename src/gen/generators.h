// Seeded random workload generation: schemas, QL concepts, and
// subsumption pairs with known ground truth (by construction: semantic
// weakening always yields a subsumer). Used by property tests and by the
// scaling / soundness / hit-rate experiments.
#ifndef OODB_GEN_GENERATORS_H_
#define OODB_GEN_GENERATORS_H_

#include <vector>

#include "base/rng.h"
#include "base/symbol.h"
#include "ql/term.h"
#include "ql/term_factory.h"
#include "schema/schema.h"

namespace oodb::gen {

struct SchemaGenOptions {
  size_t num_classes = 12;
  size_t num_attrs = 6;
  size_t num_constants = 4;
  // Probability that a class gets an isA superclass (always an
  // earlier-numbered class, so the hierarchy is acyclic).
  double isa_prob = 0.6;
  // Number of ∀-value-restriction axioms drawn at random.
  size_t value_restrictions = 10;
  // Per value restriction: chance the (class, attr) pair also becomes
  // necessary / functional.
  double necessary_prob = 0.5;
  double functional_prob = 0.2;
  // Per attribute: chance of a typing axiom P ⊑ A×B.
  double typing_prob = 0.7;
};

struct GeneratedSchema {
  std::vector<Symbol> classes;
  std::vector<Symbol> attrs;
  std::vector<Symbol> constants;
};

// Fills `sigma` with a random well-formed SL schema.
GeneratedSchema GenerateSchema(schema::Schema* sigma, Rng& rng,
                               const SchemaGenOptions& options =
                                   SchemaGenOptions());

struct ConceptGenOptions {
  size_t max_conjuncts = 4;
  size_t max_path_length = 3;
  // Nesting depth of concepts inside path filters.
  size_t max_filter_depth = 1;
  double agree_prob = 0.35;      // an ∃-conjunct becomes ∃p ≐ ε
  double singleton_prob = 0.15;  // a filter becomes {a}
  double inverse_prob = 0.25;    // a step uses P⁻¹
  double top_filter_prob = 0.35; // a filter stays ⊤
};

// A random pure-QL concept over the schema's signature.
ql::ConceptId GenerateConcept(const GeneratedSchema& sig,
                              ql::TermFactory* terms, Rng& rng,
                              const ConceptGenOptions& options =
                                  ConceptGenOptions());

inline constexpr size_t kCatalogNoParent = ~size_t{0};

// Shape of a synthetic named-concept catalog for classification
// experiments (10k–100k concepts): a forest of `num_roots` general seed
// concepts grown DOWNWARD level by level, where each child strengthens
// its parent with one fresh conjunct — so child ⊑_Σ parent holds by
// construction and the catalog is hierarchy-rich (few general ancestors,
// many specific leaves: the shape where top/bottom-search insertion
// touches only a neighborhood). A `noise_fraction` of unrelated flat
// concepts is appended last.
struct CatalogGenOptions {
  size_t num_concepts = 1000;
  size_t num_roots = 4;
  // Children per expanded node (exact, except where num_concepts or
  // depth cuts a level short).
  size_t fan_out = 4;
  // Maximum edges on any root→leaf chain. Nodes at this depth are not
  // expanded; when every node is saturated a fresh root is started.
  size_t depth = 8;
  double noise_fraction = 0.0;
  // Shape of the per-level refinement conjuncts (and of the noise
  // concepts); refinements use a single conjunct regardless of
  // max_conjuncts.
  ConceptGenOptions conjunct;
};

struct GeneratedCatalog {
  // Names K0, K1, … in emission order (tree first, noise last); the
  // intended classifier insertion order.
  std::vector<Symbol> names;
  std::vector<ql::ConceptId> concepts;
  // Structural ground truth: tree parent index per entry
  // (kCatalogNoParent for roots and noise) and tree depth per entry
  // (0 for roots and noise).
  std::vector<size_t> parent;
  std::vector<size_t> level;
  size_t num_noise = 0;
};

// Deterministic per (sig, rng state, options).
GeneratedCatalog GenerateCatalog(const GeneratedSchema& sig,
                                 ql::TermFactory* terms, Rng& rng,
                                 const CatalogGenOptions& options =
                                     CatalogGenOptions());

// Produces D with C ⊑_Σ D *by construction*, applying `steps` random
// semantics-weakening transformations:
//   * drop a conjunct of a ⊓
//   * generalize a primitive to a direct Σ-superclass
//   * relax a path filter to ⊤ (or weaken it recursively)
//   * truncate trailing path restrictions of an ∃p
//   * relax ∃p ≐ ε to ∃p
//   * relax a singleton {a} to ⊤
ql::ConceptId WeakenConcept(const schema::Schema& sigma,
                            ql::TermFactory* terms, ql::ConceptId c,
                            Rng& rng, int steps);

}  // namespace oodb::gen

#endif  // OODB_GEN_GENERATORS_H_
