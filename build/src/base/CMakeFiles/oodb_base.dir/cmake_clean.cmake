file(REMOVE_RECURSE
  "CMakeFiles/oodb_base.dir/status.cc.o"
  "CMakeFiles/oodb_base.dir/status.cc.o.d"
  "CMakeFiles/oodb_base.dir/strings.cc.o"
  "CMakeFiles/oodb_base.dir/strings.cc.o.d"
  "CMakeFiles/oodb_base.dir/symbol.cc.o"
  "CMakeFiles/oodb_base.dir/symbol.cc.o.d"
  "liboodb_base.a"
  "liboodb_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oodb_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
