#include "dl/parser.h"

#include <utility>

#include "base/strings.h"
#include "dl/lexer.h"

namespace oodb::dl {

namespace {

using ast::Formula;
using ast::FormulaPtr;

// Identifiers that end an attribute/derived/where entry list when they
// start the next section.
bool IsSectionKeyword(const std::string& word) {
  return word == "attribute" || word == "derived" || word == "where" ||
         word == "constraint" || word == "end";
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ast::File> ParseFileBody() {
    ast::File file;
    while (!AtEof()) {
      const Token& t = Peek();
      if (IsWord("Class") || IsWord("QueryClass")) {
        OODB_ASSIGN_OR_RETURN(ast::ClassDecl decl, ParseClass());
        file.classes.push_back(std::move(decl));
      } else if (IsWord("Attribute")) {
        OODB_ASSIGN_OR_RETURN(ast::AttributeDecl decl, ParseAttribute());
        file.attributes.push_back(std::move(decl));
      } else {
        return Error(t, "expected Class, QueryClass or Attribute");
      }
    }
    return file;
  }

  Result<FormulaPtr> ParseTopLevelFormula() {
    OODB_ASSIGN_OR_RETURN(FormulaPtr f, ParseFormulaExpr());
    if (!AtEof()) return Error(Peek(), "trailing input after formula");
    return f;
  }

 private:
  // --- token helpers -----------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;  // the EOF token
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEof() const { return Peek().kind == TokenKind::kEof; }
  bool Is(TokenKind k, size_t ahead = 0) const { return Peek(ahead).kind == k; }
  bool IsWord(std::string_view w, size_t ahead = 0) const {
    return Is(TokenKind::kIdent, ahead) && Peek(ahead).text == w;
  }
  bool ConsumeWord(std::string_view w) {
    if (!IsWord(w)) return false;
    Advance();
    return true;
  }
  bool Consume(TokenKind k) {
    if (!Is(k)) return false;
    Advance();
    return true;
  }

  Status Error(const Token& t, std::string_view message) const {
    return InvalidArgumentError(
        StrCat("line ", t.line, ": ", message, " (got '",
               t.kind == TokenKind::kEof ? "<eof>" : t.text, "')"));
  }

  Result<std::string> ExpectIdent(std::string_view what) {
    if (!Is(TokenKind::kIdent)) {
      return Status(StatusCode::kInvalidArgument,
                    Error(Peek(), StrCat("expected ", what)).message());
    }
    return Advance().text;
  }

  Status Expect(TokenKind k, std::string_view what) {
    if (!Consume(k)) return Error(Peek(), StrCat("expected ", what));
    return Status::Ok();
  }

  // --- declarations -------------------------------------------------------

  Result<ast::ClassDecl> ParseClass() {
    ast::ClassDecl decl;
    decl.line = Peek().line;
    decl.is_query = Peek().text == "QueryClass";
    Advance();  // Class / QueryClass
    OODB_ASSIGN_OR_RETURN(decl.name, ExpectIdent("class name"));
    if (ConsumeWord("isA")) {
      do {
        OODB_ASSIGN_OR_RETURN(std::string super, ExpectIdent("superclass"));
        decl.supers.push_back(std::move(super));
      } while (Consume(TokenKind::kComma));
    }
    OODB_RETURN_IF_ERROR(ExpectWord("with"));
    while (!IsWord("end")) {
      if (AtEof()) return Error(Peek(), "expected section or end");
      if (IsWord("attribute")) {
        OODB_RETURN_IF_ERROR(ParseAttrSection(&decl));
      } else if (IsWord("derived")) {
        OODB_RETURN_IF_ERROR(ParseDerivedSection(&decl));
      } else if (IsWord("where")) {
        OODB_RETURN_IF_ERROR(ParseWhereSection(&decl));
      } else if (IsWord("constraint")) {
        Advance();
        OODB_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':'"));
        if (decl.constraint != nullptr) {
          return Error(Peek(), "duplicate constraint clause");
        }
        OODB_ASSIGN_OR_RETURN(decl.constraint, ParseFormulaExpr());
      } else {
        return Error(Peek(),
                     "expected attribute, derived, where, constraint or end");
      }
    }
    Advance();  // end
    // Optional trailing class name.
    if (Is(TokenKind::kIdent) && Peek().text == decl.name) Advance();
    return decl;
  }

  Status ExpectWord(std::string_view w) {
    if (!ConsumeWord(w)) return Error(Peek(), StrCat("expected '", w, "'"));
    return Status::Ok();
  }

  Status ParseAttrSection(ast::ClassDecl* decl) {
    Advance();  // attribute
    bool necessary = false;
    bool single = false;
    while (Consume(TokenKind::kComma)) {
      if (ConsumeWord("necessary")) {
        necessary = true;
      } else if (ConsumeWord("single")) {
        single = true;
      } else {
        return Error(Peek(), "expected 'necessary' or 'single'");
      }
    }
    // Entries: `a : C` until the next section keyword / end.
    while (Is(TokenKind::kIdent) && !IsSectionKeyword(Peek().text)) {
      ast::AttrEntry entry;
      entry.line = Peek().line;
      entry.necessary = necessary;
      entry.single = single;
      OODB_ASSIGN_OR_RETURN(entry.attr, ExpectIdent("attribute name"));
      OODB_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':'"));
      OODB_ASSIGN_OR_RETURN(entry.range, ExpectIdent("range class"));
      decl->attrs.push_back(std::move(entry));
    }
    return Status::Ok();
  }

  Status ParseDerivedSection(ast::ClassDecl* decl) {
    Advance();  // derived
    for (;;) {
      if (Is(TokenKind::kIdent) && IsSectionKeyword(Peek().text)) break;
      if (!Is(TokenKind::kIdent) && !Is(TokenKind::kLParen)) break;
      ast::DerivedPath path;
      path.line = Peek().line;
      // `label : path` iff an identifier is directly followed by ':' and
      // the token after it starts a path (identifier or '(').
      if (Is(TokenKind::kIdent) && Is(TokenKind::kColon, 1)) {
        path.label = Advance().text;
        Advance();  // ':'
      }
      OODB_ASSIGN_OR_RETURN(path.steps, ParsePathSteps());
      decl->derived.push_back(std::move(path));
    }
    return Status::Ok();
  }

  Result<std::vector<ast::PathStep>> ParsePathSteps() {
    std::vector<ast::PathStep> steps;
    do {
      ast::PathStep step;
      step.line = Peek().line;
      if (Consume(TokenKind::kLParen)) {
        OODB_ASSIGN_OR_RETURN(step.attr, ExpectIdent("attribute name"));
        OODB_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':'"));
        if (Consume(TokenKind::kLBrace)) {
          step.filter_kind = ast::PathStep::Filter::kConstant;
          OODB_ASSIGN_OR_RETURN(step.filter, ExpectIdent("constant"));
          OODB_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "'}'"));
        } else if (Consume(TokenKind::kQuestion)) {
          step.filter_kind = ast::PathStep::Filter::kVariable;
          OODB_ASSIGN_OR_RETURN(step.filter, ExpectIdent("variable"));
        } else {
          step.filter_kind = ast::PathStep::Filter::kClass;
          OODB_ASSIGN_OR_RETURN(step.filter, ExpectIdent("class name"));
        }
        OODB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      } else {
        OODB_ASSIGN_OR_RETURN(step.attr, ExpectIdent("attribute name"));
        step.filter_kind = ast::PathStep::Filter::kNone;
      }
      steps.push_back(std::move(step));
    } while (Consume(TokenKind::kDot));
    return steps;
  }

  Status ParseWhereSection(ast::ClassDecl* decl) {
    Advance();  // where
    while (Is(TokenKind::kIdent) && !IsSectionKeyword(Peek().text)) {
      ast::WhereEq eq;
      eq.line = Peek().line;
      OODB_ASSIGN_OR_RETURN(eq.lhs, ExpectIdent("label"));
      OODB_RETURN_IF_ERROR(Expect(TokenKind::kEquals, "'='"));
      OODB_ASSIGN_OR_RETURN(eq.rhs, ExpectIdent("label"));
      decl->where.push_back(std::move(eq));
    }
    return Status::Ok();
  }

  Result<ast::AttributeDecl> ParseAttribute() {
    ast::AttributeDecl decl;
    decl.line = Peek().line;
    Advance();  // Attribute
    OODB_ASSIGN_OR_RETURN(decl.name, ExpectIdent("attribute name"));
    OODB_RETURN_IF_ERROR(ExpectWord("with"));
    while (!IsWord("end")) {
      if (AtEof()) return Error(Peek(), "expected attribute property or end");
      std::string prop;
      OODB_ASSIGN_OR_RETURN(prop, ExpectIdent("attribute property"));
      OODB_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':'"));
      std::string value;
      OODB_ASSIGN_OR_RETURN(value, ExpectIdent("property value"));
      if (prop == "domain") {
        decl.domain = value;
      } else if (prop == "range") {
        decl.range = value;
      } else if (prop == "inverse") {
        decl.inverse = value;
      } else {
        return InvalidArgumentError(
            StrCat("line ", decl.line, ": unknown attribute property '", prop,
                   "' (expected domain, range or inverse)"));
      }
    }
    Advance();  // end
    if (Is(TokenKind::kIdent) && Peek().text == decl.name) Advance();
    return decl;
  }

  // --- constraint formulas -------------------------------------------------

  Result<FormulaPtr> ParseFormulaExpr() {
    // Quantifiers scope maximally to the right (paper Fig. 3).
    if (IsWord("forall") || IsWord("exists")) {
      auto f = std::make_unique<Formula>();
      f->line = Peek().line;
      f->kind = Peek().text == "forall" ? Formula::Kind::kForall
                                        : Formula::Kind::kExists;
      Advance();
      OODB_ASSIGN_OR_RETURN(f->var, ExpectIdent("quantified variable"));
      OODB_RETURN_IF_ERROR(Expect(TokenKind::kSlash, "'/'"));
      OODB_ASSIGN_OR_RETURN(f->cls, ExpectIdent("class name"));
      OODB_ASSIGN_OR_RETURN(FormulaPtr body, ParseFormulaExpr());
      f->children.push_back(std::move(body));
      return f;
    }
    return ParseOr();
  }

  Result<FormulaPtr> ParseOr() {
    OODB_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseAnd());
    while (IsWord("or")) {
      int line = Advance().line;
      OODB_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseAnd());
      auto f = std::make_unique<Formula>();
      f->kind = Formula::Kind::kOr;
      f->line = line;
      f->children.push_back(std::move(lhs));
      f->children.push_back(std::move(rhs));
      lhs = std::move(f);
    }
    return lhs;
  }

  Result<FormulaPtr> ParseAnd() {
    OODB_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseUnary());
    while (IsWord("and")) {
      int line = Advance().line;
      OODB_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseUnary());
      auto f = std::make_unique<Formula>();
      f->kind = Formula::Kind::kAnd;
      f->line = line;
      f->children.push_back(std::move(lhs));
      f->children.push_back(std::move(rhs));
      lhs = std::move(f);
    }
    return lhs;
  }

  Result<FormulaPtr> ParseUnary() {
    if (IsWord("not")) {
      int line = Advance().line;
      OODB_ASSIGN_OR_RETURN(FormulaPtr inner, ParseUnary());
      auto f = std::make_unique<Formula>();
      f->kind = Formula::Kind::kNot;
      f->line = line;
      f->children.push_back(std::move(inner));
      return f;
    }
    if (IsWord("forall") || IsWord("exists")) return ParseFormulaExpr();
    if (!Is(TokenKind::kLParen)) {
      return Error(Peek(), "expected '(', 'not' or a quantifier");
    }
    // '(' starts either an atom or a parenthesized formula. An atom begins
    // with a term (`this` or an identifier) followed by `in`, `=` or an
    // attribute name.
    bool atom = false;
    if (IsWord("this", 1) || Is(TokenKind::kIdent, 1)) {
      if (IsWord("forall", 1) || IsWord("exists", 1) || IsWord("not", 1)) {
        atom = false;
      } else if (Is(TokenKind::kIdent, 2) || Is(TokenKind::kEquals, 2)) {
        atom = true;
      }
    }
    if (atom) return ParseAtom();
    Advance();  // '('
    OODB_ASSIGN_OR_RETURN(FormulaPtr inner, ParseFormulaExpr());
    OODB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    return inner;
  }

  Result<ast::Term> ParseTerm() {
    ast::Term t;
    t.line = Peek().line;
    if (ConsumeWord("this")) {
      t.kind = ast::Term::Kind::kThis;
      return t;
    }
    t.kind = ast::Term::Kind::kIdent;
    OODB_ASSIGN_OR_RETURN(t.name, ExpectIdent("term"));
    return t;
  }

  Result<FormulaPtr> ParseAtom() {
    int line = Peek().line;
    OODB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    auto f = std::make_unique<Formula>();
    f->line = line;
    OODB_ASSIGN_OR_RETURN(f->t1, ParseTerm());
    if (Consume(TokenKind::kEquals)) {
      f->kind = Formula::Kind::kEq;
      OODB_ASSIGN_OR_RETURN(f->t2, ParseTerm());
    } else if (ConsumeWord("in")) {
      f->kind = Formula::Kind::kIn;
      OODB_ASSIGN_OR_RETURN(f->cls, ExpectIdent("class name"));
    } else if (Is(TokenKind::kIdent)) {
      f->kind = Formula::Kind::kAttr;
      f->attr = Advance().text;
      OODB_ASSIGN_OR_RETURN(f->t2, ParseTerm());
    } else {
      return Error(Peek(), "expected 'in', '=' or an attribute name");
    }
    OODB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    return f;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ast::File> ParseFile(std::string_view source) {
  OODB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseFileBody();
}

Result<ast::FormulaPtr> ParseFormula(std::string_view source) {
  OODB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseTopLevelFormula();
}

}  // namespace oodb::dl
