// Tests for workload view synthesis: CommonSubsumer + concept-only views
// serving several queries at once (the paper's Sect. 6 cooperative
// scenario).
#include <gtest/gtest.h>

#include <memory>

#include "base/rng.h"
#include "calculus/services.h"
#include "calculus/subsumption.h"
#include "db/database.h"
#include "db/evaluator.h"
#include "db/instance.h"
#include "dl/analyzer.h"
#include "dl/translate.h"
#include "gen/generators.h"
#include "ql/print.h"
#include "schema/schema.h"
#include "views/views.h"

namespace oodb {
namespace {

TEST(CommonSubsumer, SubsumesEveryInput) {
  Rng rng(140);
  for (int round = 0; round < 60; ++round) {
    SymbolTable symbols;
    ql::TermFactory f(&symbols);
    schema::Schema sigma(&f);
    gen::GeneratedSchema sig = gen::GenerateSchema(&sigma, rng);
    calculus::SubsumptionChecker checker(sigma);
    // A correlated workload: weakenings of one seed concept share
    // structure the subsumer can capture.
    ql::ConceptId seed = gen::GenerateConcept(sig, &f, rng);
    std::vector<ql::ConceptId> workload;
    for (int i = 0; i < 3; ++i) {
      workload.push_back(gen::WeakenConcept(sigma, &f, seed, rng, 1));
    }
    auto s = calculus::CommonSubsumer(checker, &f, workload);
    ASSERT_TRUE(s.ok()) << s.status();
    for (ql::ConceptId c : workload) {
      auto verdict = checker.Subsumes(c, *s);
      ASSERT_TRUE(verdict.ok());
      EXPECT_TRUE(*verdict)
          << ql::ConceptToString(f, c) << "  should be below  "
          << ql::ConceptToString(f, *s);
    }
  }
}

TEST(CommonSubsumer, SharedConjunctsSurvive) {
  SymbolTable symbols;
  ql::TermFactory f(&symbols);
  schema::Schema sigma(&f);
  calculus::SubsumptionChecker checker(sigma);
  ql::Attr a{symbols.Intern("a"), false};
  ql::ConceptId shared = f.Exists(f.Step(a, f.Primitive("B")));
  ql::ConceptId c1 = f.And(f.Primitive("A"), shared);
  ql::ConceptId c2 = f.And(f.Primitive("C"), shared);
  auto s = calculus::CommonSubsumer(checker, &f, {c1, c2});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, shared);
}

TEST(CommonSubsumer, DisjointWorkloadDegradesToTop) {
  SymbolTable symbols;
  ql::TermFactory f(&symbols);
  schema::Schema sigma(&f);
  calculus::SubsumptionChecker checker(sigma);
  auto s = calculus::CommonSubsumer(checker, &f,
                                    {f.Primitive("A"), f.Primitive("B")});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, f.Top());
}

TEST(CommonSubsumer, SchemaMakesSubsumersTighter) {
  SymbolTable symbols;
  ql::TermFactory f(&symbols);
  schema::Schema sigma(&f);
  ASSERT_TRUE(sigma.AddIsA(symbols.Intern("A"), symbols.Intern("P")).ok());
  ASSERT_TRUE(sigma.AddIsA(symbols.Intern("B"), symbols.Intern("P")).ok());
  calculus::SubsumptionChecker checker(sigma);
  // Without Σ the workload is disjoint; with Σ both sit under P — but P
  // is not a conjunct of either input, so the conjunct-based synthesizer
  // still returns ⊤ unless P occurs syntactically. Adding P to one input
  // makes it the shared subsumer.
  ql::ConceptId c1 = f.And(f.Primitive("A"), f.Primitive("P"));
  ql::ConceptId c2 = f.Primitive("B");
  auto s = calculus::CommonSubsumer(checker, &f, {c1, c2});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, f.Primitive("P"));
}

// --- Concept views over a real database --------------------------------------

constexpr const char* kSchema = R"(
Class Person with
end Person
Class Doctor isA Person with
  attribute
    skilled_in: Disease
end Doctor
Class Patient isA Person with
  attribute
    consults: Doctor
    suffers: Disease
end Patient
Class Disease with
end Disease
QueryClass ConsultingPatients isA Patient with
  derived
    l1: (consults: Doctor)
    l2: (suffers: Disease).(specialist: Doctor)
  where
    l1 = l2
end ConsultingPatients
QueryClass SickPatients isA Patient with
  derived
    (suffers: Disease)
    (consults: Doctor)
end SickPatients
Attribute skilled_in with
  domain: Doctor
  range: Disease
  inverse: specialist
end skilled_in
)";

struct Fx {
  SymbolTable symbols;
  std::unique_ptr<ql::TermFactory> terms;
  std::unique_ptr<schema::Schema> sigma;
  std::unique_ptr<dl::Model> model;
  std::unique_ptr<dl::Translator> translator;
  std::unique_ptr<db::Database> database;

  Fx() {
    terms = std::make_unique<ql::TermFactory>(&symbols);
    sigma = std::make_unique<schema::Schema>(terms.get());
    auto m = dl::ParseAndAnalyze(kSchema, &symbols);
    EXPECT_TRUE(m.ok()) << m.status();
    model = std::make_unique<dl::Model>(std::move(m).value());
    translator = std::make_unique<dl::Translator>(*model, terms.get());
    EXPECT_TRUE(translator->BuildSchema(sigma.get()).ok());
    database = std::make_unique<db::Database>(*model, &symbols);
    auto loaded = db::LoadInstance(R"(
      Object flu in Disease with
      end flu
      Object alice in Doctor with
        skilled_in: flu
      end alice
      Object p1 in Patient with
        suffers: flu
        consults: alice
      end p1
      Object p2 in Patient with
        suffers: flu
      end p2
    )",
                                   database.get());
    EXPECT_TRUE(loaded.ok()) << loaded.status();
  }
  Symbol S(const char* name) { return symbols.Intern(name); }
};

TEST(ConceptView, SynthesizedViewServesTheWorkload) {
  Fx fx;
  calculus::SubsumptionChecker checker(*fx.sigma);
  std::vector<ql::ConceptId> workload = {
      *fx.translator->QueryConcept(fx.S("ConsultingPatients")),
      *fx.translator->QueryConcept(fx.S("SickPatients"))};
  auto subsumer = calculus::CommonSubsumer(checker, fx.terms.get(),
                                           workload);
  ASSERT_TRUE(subsumer.ok());
  ASSERT_NE(*subsumer, fx.terms->Top());

  views::ViewCatalog catalog(fx.database.get(), fx.translator.get());
  ASSERT_TRUE(
      catalog.DefineConceptView(fx.S("SynthesizedView"), *subsumer).ok());
  const views::View* view = catalog.Find(fx.S("SynthesizedView"));
  ASSERT_NE(view, nullptr);
  EXPECT_TRUE(view->concept_only);

  // The optimizer answers both workload queries through it.
  views::Optimizer optimizer(fx.database.get(), &catalog, *fx.sigma,
                             fx.translator.get());
  db::QueryEvaluator evaluator(*fx.database);
  for (const char* query : {"ConsultingPatients", "SickPatients"}) {
    views::QueryPlan plan;
    auto optimized = optimizer.Execute(fx.S(query), &plan);
    ASSERT_TRUE(optimized.ok()) << optimized.status();
    EXPECT_TRUE(plan.uses_view) << query;
    auto naive = evaluator.Evaluate(fx.S(query));
    ASSERT_TRUE(naive.ok());
    EXPECT_EQ(*optimized, *naive) << query;
  }
}

TEST(ConceptView, MaintainedLikeOrdinaryViews) {
  Fx fx;
  views::ViewCatalog catalog(fx.database.get(), fx.translator.get());
  // View: patients with a consultation.
  ql::ConceptId concept_id = fx.terms->And(
      fx.terms->Primitive("Patient"),
      fx.terms->Exists(fx.terms->Step(
          ql::Attr{fx.S("consults"), false}, fx.terms->Primitive("Doctor"))));
  ASSERT_TRUE(catalog.DefineConceptView(fx.S("V"), concept_id).ok());
  EXPECT_EQ(catalog.Find(fx.S("V"))->extent.size(), 1u);  // p1

  auto p2 = *fx.database->FindObject(fx.S("p2"));
  auto alice = *fx.database->FindObject(fx.S("alice"));
  ASSERT_TRUE(fx.database->AddAttr(p2, fx.S("consults"), alice).ok());
  ASSERT_TRUE(catalog.RefreshIncremental({p2, alice}).ok());
  EXPECT_EQ(catalog.Find(fx.S("V"))->extent.size(), 2u);
}

TEST(ConceptView, RejectsUnknownSingletonsAndNameCollisions) {
  Fx fx;
  views::ViewCatalog catalog(fx.database.get(), fx.translator.get());
  ql::ConceptId with_skolem = fx.terms->Exists(fx.terms->Step(
      ql::Attr{fx.S("consults"), false},
      fx.terms->Singleton(fx.symbols.Fresh("sk_x"))));
  EXPECT_EQ(catalog.DefineConceptView(fx.S("V1"), with_skolem).code(),
            StatusCode::kFailedPrecondition);
  // Class names are reserved.
  EXPECT_EQ(catalog.DefineConceptView(fx.S("Patient"),
                                      fx.terms->Primitive("Patient"))
                .code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace oodb
