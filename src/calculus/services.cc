#include "calculus/services.h"

#include <algorithm>

#include "base/strings.h"
#include "ql/print.h"

namespace oodb::calculus {

namespace {

// Flattens an ⊓-tree into its conjunct list.
void Conjuncts(const ql::TermFactory& f, ql::ConceptId c,
               std::vector<ql::ConceptId>* out) {
  const ql::ConceptNode& n = f.node(c);
  if (n.kind == ql::ConceptKind::kAnd) {
    Conjuncts(f, n.lhs, out);
    Conjuncts(f, n.rhs, out);
  } else {
    out->push_back(c);
  }
}

}  // namespace

Result<ql::ConceptId> MinimizeConcept(const SubsumptionChecker& checker,
                                      ql::TermFactory* terms,
                                      ql::ConceptId c) {
  std::vector<ql::ConceptId> conjuncts;
  Conjuncts(*terms, c, &conjuncts);

  // Phase 1: drop conjuncts implied by the rest.
  bool changed = true;
  while (changed && conjuncts.size() > 1) {
    changed = false;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      std::vector<ql::ConceptId> rest;
      for (size_t j = 0; j < conjuncts.size(); ++j) {
        if (j != i) rest.push_back(conjuncts[j]);
      }
      ql::ConceptId candidate = terms->AndAll(rest);
      OODB_ASSIGN_OR_RETURN(bool implied,
                            checker.Subsumes(candidate, conjuncts[i]));
      if (implied) {
        conjuncts = std::move(rest);
        changed = true;
        break;
      }
    }
  }

  // Phase 2: weaken path filters to ⊤ where the rest of the concept
  // already implies them (the weakened whole must subsume-back).
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    const ql::ConceptNode n = terms->node(conjuncts[i]);
    if (n.kind != ql::ConceptKind::kExists &&
        n.kind != ql::ConceptKind::kAgree) {
      continue;
    }
    std::vector<ql::Restriction> steps = terms->path(n.path);
    bool any = false;
    for (size_t k = 0; k < steps.size(); ++k) {
      if (steps[k].filter == terms->Top()) continue;
      std::vector<ql::Restriction> weakened_steps = steps;
      weakened_steps[k].filter = terms->Top();
      ql::PathId weakened_path = terms->MakePath(weakened_steps);
      ql::ConceptId weakened_conjunct =
          n.kind == ql::ConceptKind::kExists ? terms->Exists(weakened_path)
                                             : terms->Agree(weakened_path);
      std::vector<ql::ConceptId> candidate_list = conjuncts;
      candidate_list[i] = weakened_conjunct;
      ql::ConceptId candidate = terms->AndAll(candidate_list);
      // Weakening gives c ⊑ candidate for free; equality needs the
      // converse.
      OODB_ASSIGN_OR_RETURN(bool back, checker.Subsumes(candidate, c));
      if (back) {
        steps = std::move(weakened_steps);
        any = true;
      }
    }
    if (any) {
      ql::PathId path = terms->MakePath(std::move(steps));
      conjuncts[i] = n.kind == ql::ConceptKind::kExists
                         ? terms->Exists(path)
                         : terms->Agree(path);
    }
  }

  ql::ConceptId result = terms->AndAll(conjuncts);
  // Safety net: the result must be Σ-equivalent to the input.
  OODB_ASSIGN_OR_RETURN(bool equivalent, checker.Equivalent(result, c));
  if (!equivalent) return c;
  return result;
}

Result<ql::ConceptId> CommonSubsumer(const SubsumptionChecker& checker,
                                     ql::TermFactory* terms,
                                     const std::vector<ql::ConceptId>& cs) {
  if (cs.empty()) return terms->Top();
  // Candidate conjuncts: every top-level conjunct of every input.
  std::vector<ql::ConceptId> candidates;
  for (ql::ConceptId c : cs) Conjuncts(*terms, c, &candidates);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  std::vector<ql::ConceptId> kept;
  for (ql::ConceptId candidate : candidates) {
    bool common = true;
    for (ql::ConceptId c : cs) {
      OODB_ASSIGN_OR_RETURN(bool sub, checker.Subsumes(c, candidate));
      if (!sub) {
        common = false;
        break;
      }
    }
    if (common) kept.push_back(candidate);
  }
  return MinimizeConcept(checker, terms, terms->AndAll(kept));
}

Result<std::optional<ql::ConceptId>> ResidualFilter(
    const SubsumptionChecker& checker, ql::TermFactory* terms,
    ql::ConceptId q, ql::ConceptId v) {
  OODB_ASSIGN_OR_RETURN(bool subsumed, checker.Subsumes(q, v));
  if (!subsumed) return std::optional<ql::ConceptId>();

  std::vector<ql::ConceptId> residual;
  Conjuncts(*terms, q, &residual);
  // Greedy deletion: Q ⊑ V and Q ⊑ ⋀R' give Q ⊑ V ⊓ R' for free, so only
  // the converse V ⊓ R' ⊑ Q needs checking.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < residual.size(); ++i) {
      std::vector<ql::ConceptId> rest;
      for (size_t j = 0; j < residual.size(); ++j) {
        if (j != i) rest.push_back(residual[j]);
      }
      ql::ConceptId candidate = terms->And(v, terms->AndAll(rest));
      OODB_ASSIGN_OR_RETURN(bool exact, checker.Subsumes(candidate, q));
      if (exact) {
        residual = std::move(rest);
        changed = true;
        break;
      }
    }
  }
  return std::optional<ql::ConceptId>(terms->AndAll(residual));
}

Status Classifier::Add(Symbol name, ql::ConceptId concept_id) {
  if (nodes_.count(name) > 0) {
    return AlreadyExistsError("concept name already classified");
  }
  Node node;
  node.concept_id = concept_id;
  node.order = next_order_++;
  nodes_.emplace(name, std::move(node));
  names_.push_back(name);
  return Status::Ok();
}

Status Classifier::Classify() {
  // Pending names join the persistent DAG one by one, in Add() order;
  // names already classified are untouched. Uniqueness of the transitive
  // reduction makes the result independent of how the DAG was grown.
  for (Symbol name : names_) {
    if (class_of_.count(name) > 0) continue;
    OODB_RETURN_IF_ERROR(InsertIntoDag(name));
  }
  RefreshAggregateStats();
  return Status::Ok();
}

Status Classifier::Insert(Symbol name, ql::ConceptId concept_id) {
  OODB_RETURN_IF_ERROR(Add(name, concept_id));
  return Classify();
}

Status Classifier::Remove(Symbol name) {
  auto nit = nodes_.find(name);
  if (nit == nodes_.end()) {
    return NotFoundError("concept name not classified");
  }
  last_op_ = OpStats{};
  last_op_.classes_before = live_classes_;
  names_.erase(std::find(names_.begin(), names_.end(), name));

  auto cit = class_of_.find(name);
  if (cit == class_of_.end()) {  // pending Add(), never entered the DAG
    nodes_.erase(nit);
    RefreshAggregateStats();
    return Status::Ok();
  }
  const size_t k = cit->second;
  class_of_.erase(cit);
  nodes_.erase(nit);
  Class& klass = classes_[k];
  klass.members.erase(
      std::remove(klass.members.begin(), klass.members.end(), name),
      klass.members.end());

  if (!klass.members.empty()) {
    // The class survives; re-anchor its representative on a remaining
    // Σ-equivalent member and rebuild the neighborhood's name lists.
    klass.rep = nodes_.at(klass.members.front()).concept_id;
    RefreshClassMembers(k);
    for (size_t p : klass.parents) RefreshClassMembers(p);
    for (size_t ch : klass.children) RefreshClassMembers(ch);
    RefreshAggregateStats();
    return Status::Ok();
  }

  // Sole member gone: delete the class and repair the transitive
  // reduction. New reduction edges can only run from a direct child c to
  // a direct parent p of the deleted class, and (c, p) is needed exactly
  // when p is unreachable from c through the remaining edges — witness
  // paths never use other candidate edges, because direct children are
  // mutually incomparable (and so are direct parents).
  const std::vector<size_t> parents = klass.parents;
  const std::vector<size_t> children = klass.children;
  auto erase_value = [](std::vector<size_t>* v, size_t value) {
    v->erase(std::remove(v->begin(), v->end(), value), v->end());
  };
  for (size_t p : parents) erase_value(&classes_[p].children, k);
  for (size_t ch : children) erase_value(&classes_[ch].parents, k);

  std::vector<std::pair<size_t, size_t>> missing;  // (child, parent)
  std::vector<char> reach(classes_.size(), 0);
  std::vector<size_t> stack;
  for (size_t ch : children) {
    std::fill(reach.begin(), reach.end(), 0);
    reach[ch] = 1;
    stack.push_back(ch);
    while (!stack.empty()) {
      size_t y = stack.back();
      stack.pop_back();
      for (size_t p : classes_[y].parents) {
        if (!reach[p]) {
          reach[p] = 1;
          stack.push_back(p);
        }
      }
    }
    for (size_t p : parents) {
      if (!reach[p]) missing.emplace_back(ch, p);
    }
  }
  for (const auto& [ch, p] : missing) {
    classes_[ch].parents.push_back(p);
    classes_[p].children.push_back(ch);
    ++last_op_.edges_added;
  }

  klass = Class{};  // tombstone (alive == false)
  free_classes_.push_back(k);
  --live_classes_;
  for (size_t p : parents) RefreshClassMembers(p);
  for (size_t ch : children) RefreshClassMembers(ch);
  RefreshAggregateStats();
  return Status::Ok();
}

std::vector<size_t> Classifier::TopoOrder() const {
  std::vector<size_t> topo;
  topo.reserve(live_classes_);
  std::vector<char> done(classes_.size(), 0);
  std::vector<size_t> stack;
  for (size_t start = 0; start < classes_.size(); ++start) {
    if (done[start] || !classes_[start].alive) continue;
    stack.push_back(start);
    while (!stack.empty()) {
      size_t y = stack.back();
      bool ready = true;
      for (size_t p : classes_[y].parents) {
        if (!done[p]) {
          stack.push_back(p);
          ready = false;
        }
      }
      if (!ready) continue;
      stack.pop_back();
      if (done[y]) continue;
      done[y] = 1;
      topo.push_back(y);
    }
  }
  return topo;
}

Status Classifier::InsertIntoDag(Symbol name) {
  // The DAG edges are always the transitive reduction of the strict
  // subsumption order on the classes present, so reachability answers
  // "is this pair already decided?" for free — the source of the check
  // avoidance in kEnhancedTraversal. kPairwise runs the same searches
  // without pruning (every live class checked in both directions).
  const ql::ConceptId c = nodes_.at(name).concept_id;
  const size_t m = classes_.size();
  const bool prune = mode_ == Mode::kEnhancedTraversal;
  last_op_ = OpStats{};
  last_op_.classes_before = live_classes_;

  // Topological order of the current DAG, parents before children.
  const std::vector<size_t> topo = TopoOrder();

  // Top search: which classes subsume c? The subsumer set is upward
  // closed (c ⊑ y and y ⊑ p give c ⊑ p), so once a class is out, every
  // class below it is out without a check.
  std::vector<char> up(m, 0);
  for (size_t y : topo) {
    if (prune) {
      bool pruned = false;
      for (size_t p : classes_[y].parents) {
        if (!up[p]) {
          pruned = true;
          break;
        }
      }
      if (pruned) continue;  // up[y] stays "no"
    }
    ++stats_.checks_performed;
    ++last_op_.checks_performed;
    OODB_ASSIGN_OR_RETURN(bool sub, checker_.Subsumes(c, classes_[y].rep));
    up[y] = sub ? 1 : 0;
  }
  // Direct parents = minimal subsumers = subsumer classes none of whose
  // DAG children also subsume.
  std::vector<size_t> direct_parents;
  for (size_t y : topo) {
    if (!up[y]) continue;
    bool minimal = true;
    for (size_t ch : classes_[y].children) {
      if (up[ch]) {
        minimal = false;
        break;
      }
    }
    if (minimal) direct_parents.push_back(y);
  }

  // Bottom search: which classes does c subsume? Any subsumee sits
  // (weakly) below EVERY direct parent, so only the intersection of
  // their down-sets is live; within it, a class whose child already
  // failed fails too (ch ⊑ y ⊑ c would force ch ⊑ c).
  std::vector<char> candidate(m, 0);
  if (!prune || direct_parents.empty()) {
    for (size_t y : topo) candidate[y] = 1;
  } else {
    std::vector<char> reach(m, 0);
    std::vector<size_t> stack;
    for (size_t p : direct_parents) {
      std::fill(reach.begin(), reach.end(), 0);
      reach[p] = 1;
      stack.push_back(p);
      while (!stack.empty()) {
        size_t y = stack.back();
        stack.pop_back();
        for (size_t ch : classes_[y].children) {
          if (!reach[ch]) {
            reach[ch] = 1;
            stack.push_back(ch);
          }
        }
      }
      for (size_t y = 0; y < m; ++y) {
        if (p == direct_parents.front()) {
          candidate[y] = reach[y];
        } else {
          candidate[y] = candidate[y] && reach[y];
        }
      }
    }
  }
  std::vector<char> down(m, 0);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    size_t y = *it;
    if (!candidate[y]) continue;  // y ⋢ some parent of c ⟹ y ⋢ c
    if (prune) {
      bool pruned = false;
      for (size_t ch : classes_[y].children) {
        if (!down[ch]) {
          pruned = true;
          break;
        }
      }
      if (pruned) continue;
    }
    ++stats_.checks_performed;
    ++last_op_.checks_performed;
    OODB_ASSIGN_OR_RETURN(bool sub, checker_.Subsumes(classes_[y].rep, c));
    down[y] = sub ? 1 : 0;
  }

  // Equivalence: a class both above and below c absorbs the name (there
  // can be at most one — distinct classes are never mutually subsuming).
  for (size_t y : topo) {
    if (up[y] && down[y]) {
      classes_[y].members.push_back(name);
      class_of_.emplace(name, y);
      RefreshClassMembers(y);
      for (size_t p : classes_[y].parents) RefreshClassMembers(p);
      for (size_t ch : classes_[y].children) RefreshClassMembers(ch);
      return Status::Ok();
    }
  }

  // New class: link to the direct parents and the maximal subsumees,
  // then drop the parent↔child edges the new class now mediates (keeping
  // the DAG transitively reduced).
  std::vector<size_t> direct_children;
  for (size_t y : topo) {
    if (!down[y]) continue;
    bool maximal = true;
    for (size_t p : classes_[y].parents) {
      if (down[p]) {
        maximal = false;
        break;
      }
    }
    if (maximal) direct_children.push_back(y);
  }
  size_t idx;
  if (!free_classes_.empty()) {
    idx = free_classes_.back();
    free_classes_.pop_back();
  } else {
    classes_.emplace_back();
    idx = classes_.size() - 1;
  }
  Class& fresh = classes_[idx];
  fresh = Class{};
  fresh.alive = true;
  fresh.members.push_back(name);
  fresh.rep = c;
  fresh.parents = direct_parents;
  fresh.children = direct_children;
  ++live_classes_;
  class_of_.emplace(name, idx);
  last_op_.edges_added = direct_parents.size() + direct_children.size();
  auto erase_value = [](std::vector<size_t>* v, size_t value) {
    v->erase(std::remove(v->begin(), v->end(), value), v->end());
  };
  for (size_t ch : direct_children) {
    for (size_t p : direct_parents) {
      erase_value(&classes_[ch].parents, p);
      erase_value(&classes_[p].children, ch);
    }
    classes_[ch].parents.push_back(idx);
  }
  for (size_t p : direct_parents) classes_[p].children.push_back(idx);

  RefreshClassMembers(idx);
  for (size_t p : direct_parents) RefreshClassMembers(p);
  for (size_t ch : direct_children) RefreshClassMembers(ch);
  return Status::Ok();
}

void Classifier::RefreshClassMembers(size_t k) {
  // Expand this class's corner of the DAG into per-name lists: every
  // member of every adjacent class, ordered by Add() sequence (which is
  // exactly names() order, and what a from-scratch run produces).
  auto by_insertion = [this](std::vector<Symbol>* v) {
    std::sort(v->begin(), v->end(), [this](Symbol a, Symbol b) {
      return nodes_.at(a).order < nodes_.at(b).order;
    });
  };
  const Class& klass = classes_[k];
  for (Symbol name : klass.members) {
    Node& node = nodes_.at(name);
    node.equivalents.clear();
    node.parents.clear();
    node.children.clear();
    for (Symbol other : klass.members) {
      if (other != name) node.equivalents.push_back(other);
    }
    for (size_t p : klass.parents) {
      for (Symbol other : classes_[p].members) node.parents.push_back(other);
    }
    for (size_t ch : klass.children) {
      for (Symbol other : classes_[ch].members) node.children.push_back(other);
    }
    by_insertion(&node.equivalents);
    by_insertion(&node.parents);
    by_insertion(&node.children);
  }
}

void Classifier::RefreshAggregateStats() {
  stats_.concepts = names_.size();
  stats_.pairwise_checks =
      names_.size() < 2 ? 0 : names_.size() * (names_.size() - 1);
  stats_.checks_avoided = stats_.pairwise_checks > stats_.checks_performed
                              ? stats_.pairwise_checks - stats_.checks_performed
                              : 0;
}

ql::ConceptId Classifier::ConceptOf(Symbol name) const {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? ql::kInvalidConcept : it->second.concept_id;
}

std::vector<Symbol> Classifier::Parents(Symbol name) const {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? std::vector<Symbol>{} : it->second.parents;
}

std::vector<Symbol> Classifier::Children(Symbol name) const {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? std::vector<Symbol>{} : it->second.children;
}

std::vector<Symbol> Classifier::Equivalents(Symbol name) const {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? std::vector<Symbol>{} : it->second.equivalents;
}

Result<std::vector<Symbol>> Classifier::SubsumersOf(
    ql::ConceptId concept_id) const {
  // Collect subsumers, then order children-before-parents so callers can
  // take the first (most specific) hit.
  std::vector<Symbol> subsumers;
  for (Symbol name : names_) {
    OODB_ASSIGN_OR_RETURN(
        bool sub, checker_.Subsumes(concept_id, nodes_.at(name).concept_id));
    if (sub) subsumers.push_back(name);
  }
  std::vector<Symbol> ordered;
  std::unordered_map<Symbol, bool> placed;
  // Repeatedly emit subsumers all of whose (subsumer-)children are placed.
  while (ordered.size() < subsumers.size()) {
    bool progress = false;
    for (Symbol name : subsumers) {
      if (placed[name]) continue;
      bool ready = true;
      for (Symbol child : nodes_.at(name).children) {
        if (std::find(subsumers.begin(), subsumers.end(), child) !=
                subsumers.end() &&
            !placed[child]) {
          ready = false;
          break;
        }
      }
      if (ready) {
        ordered.push_back(name);
        placed[name] = true;
        progress = true;
      }
    }
    if (!progress) {  // equivalence cycles: emit the rest in input order
      for (Symbol name : subsumers) {
        if (!placed[name]) {
          ordered.push_back(name);
          placed[name] = true;
        }
      }
    }
  }
  return ordered;
}

std::string Classifier::ToString(const SymbolTable& symbols) const {
  std::string out;
  for (Symbol name : names_) {
    const Node& node = nodes_.at(name);
    out += StrCat(symbols.Name(name), "\n");
    if (!node.equivalents.empty()) {
      out += StrCat("  ≡ ", StrJoinMapped(node.equivalents, ", ",
                                          [&](Symbol s) {
                                            return symbols.Name(s);
                                          }),
                    "\n");
    }
    out += StrCat("  parents: ",
                  node.parents.empty()
                      ? "⊤"
                      : StrJoinMapped(node.parents, ", ",
                                      [&](Symbol s) {
                                        return symbols.Name(s);
                                      }),
                  "\n");
  }
  return out;
}

}  // namespace oodb::calculus
