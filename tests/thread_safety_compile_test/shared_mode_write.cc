// MUST NOT COMPILE under -Werror=thread-safety: writing a GUARDED_BY
// member while holding only the shared (reader) side of its mutex.
#include "base/sync.h"

namespace {

class Registry {
 public:
  void Rename() {
    oodb::base::ReaderLock lock(&mu_);
    ++generation_;  // BAD: writes need the exclusive side
  }

 private:
  oodb::base::SharedMutex mu_;
  int generation_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Registry r;
  r.Rename();
  return 0;
}
