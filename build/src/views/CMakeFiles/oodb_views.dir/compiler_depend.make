# Empty compiler generated dependencies file for oodb_views.
# This may be replaced when dependencies are built.
