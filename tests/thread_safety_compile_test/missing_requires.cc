// MUST NOT COMPILE under -Werror=thread-safety: calling a REQUIRES
// method without holding the declared capability.
#include "base/sync.h"

namespace {

class Table {
 public:
  void InsertLocked() REQUIRES(mu_) { ++entries_; }
  void Insert() { InsertLocked(); }  // BAD: caller does not hold mu_

 private:
  oodb::base::Mutex mu_;
  int entries_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Table t;
  t.Insert();
  return 0;
}
