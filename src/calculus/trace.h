// Rule identifiers, trace recording and run statistics for the calculus.
#ifndef OODB_CALCULUS_TRACE_H_
#define OODB_CALCULUS_TRACE_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace oodb::calculus {

// The 21 rules of Figures 7-10 (D2 is implicit in canonical attribute
// storage but still reported when an inverse-oriented fact is recorded).
// S6 is ours, not the paper's: if s:A ∈ F, A ⊑ ∃P ∈ Σ and P ⊑ A₁×A₂ ∈ Σ,
// then s:A₁ — the necessary filler's edge types its own source. The paper's
// rules miss this consequence (its canonical interpretation would violate
// the typing axiom on the (s, u) edges it adds for necessary attributes);
// S6 is sound, monotone and restores Prop. 4.5.
enum class Rule : uint8_t {
  kD1, kD2, kD3, kD4, kD5, kD6, kD7,
  kS1, kS2, kS3, kS4, kS5, kS6,
  kG1, kG2, kG3,
  kC1, kC2, kC3, kC4, kC5, kC6,
  kCount,
};

// "D1", "S5", ...
const char* RuleName(Rule rule);

// One recorded rule application, e.g. {kD1, "F += x:Male, x:Patient"}.
struct TraceEvent {
  Rule rule;
  std::string text;
};

// Aggregate statistics of a completion run.
struct RunStats {
  std::array<uint64_t, static_cast<size_t>(Rule::kCount)> rule_applications{};
  size_t individuals = 0;       // constants + variables created
  size_t variables = 0;
  size_t facts = 0;             // |F| at completion
  size_t goals = 0;             // |G| at completion
  size_t rounds = 0;            // outer fixpoint rounds
  bool clash = false;
  std::chrono::nanoseconds duration{0};

  uint64_t TotalApplications() const {
    uint64_t total = 0;
    for (uint64_t n : rule_applications) total += n;
    return total;
  }
};

}  // namespace oodb::calculus

#endif  // OODB_CALCULUS_TRACE_H_
