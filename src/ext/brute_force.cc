#include "ext/brute_force.h"

#include "interp/eval.h"

namespace oodb::ext {

bool XEval(const interp::Interpretation& interp, const XConceptPtr& c,
           int d) {
  switch (c->kind) {
    case XConcept::Kind::kTop:
      return true;
    case XConcept::Kind::kPrim:
      return interp.InConcept(c->sym, d);
    case XConcept::Kind::kSingleton: {
      auto v = interp.ConstantValue(c->sym);
      return v.has_value() && *v == d;
    }
    case XConcept::Kind::kNotPrim:
      return !interp.InConcept(c->sym, d);
    case XConcept::Kind::kAnd:
      for (const XConceptPtr& child : c->children) {
        if (!XEval(interp, child, d)) return false;
      }
      return true;
    case XConcept::Kind::kOr:
      for (const XConceptPtr& child : c->children) {
        if (XEval(interp, child, d)) return true;
      }
      return false;
    case XConcept::Kind::kExists:
    case XConcept::Kind::kAll: {
      std::vector<int> fillers = c->attr.inverted
                                     ? interp.Predecessors(c->attr.prim, d)
                                     : interp.Successors(c->attr.prim, d);
      if (c->kind == XConcept::Kind::kExists) {
        for (int t : fillers) {
          if (XEval(interp, c->children[0], t)) return true;
        }
        return false;
      }
      for (int t : fillers) {
        if (!XEval(interp, c->children[0], t)) return false;
      }
      return true;
    }
  }
  return false;
}

bool SatisfiesExtSchema(const interp::Interpretation& interp,
                        const ExtSchema& sigma) {
  const size_t n = interp.domain_size();
  for (const ExtAxiom& ax : sigma.axioms()) {
    for (size_t i = 0; i < n; ++i) {
      int d = static_cast<int>(i);
      if (!interp.InConcept(ax.lhs, d)) continue;
      switch (ax.kind) {
        case ExtAxiom::Kind::kIsA:
          if (!interp.InConcept(ax.rhs, d)) return false;
          break;
        case ExtAxiom::Kind::kAll: {
          std::vector<int> fillers =
              ax.attr.inverted ? interp.Predecessors(ax.attr.prim, d)
                               : interp.Successors(ax.attr.prim, d);
          for (int t : fillers) {
            if (!interp.InConcept(ax.rhs, t)) return false;
          }
          break;
        }
        case ExtAxiom::Kind::kExists:
          if (interp.Successors(ax.attr.prim, d).empty()) return false;
          break;
        case ExtAxiom::Kind::kExistsQ: {
          bool witnessed = false;
          for (int t : interp.Successors(ax.attr.prim, d)) {
            if (interp.InConcept(ax.rhs, t)) {
              witnessed = true;
              break;
            }
          }
          if (!witnessed) return false;
          break;
        }
      }
    }
  }
  return true;
}

namespace {

// Visits every interpretation over the signature with the given domain
// size, calling `visit(interp)` until it returns true (found) or the
// budget is exhausted. Returns {found, budget_hit}.
template <typename Visit>
std::pair<bool, bool> Enumerate(size_t domain,
                                const std::vector<Symbol>& concepts,
                                const std::vector<Symbol>& attrs,
                                const std::vector<Symbol>& constants,
                                uint64_t* interpretations, uint64_t cap,
                                Visit&& visit) {
  const size_t concept_bits = concepts.size() * domain;
  const size_t attr_bits = attrs.size() * domain * domain;
  std::vector<char> bits(concept_bits + attr_bits, 0);
  for (;;) {
    if (++*interpretations > cap) return {false, true};
    interp::Interpretation interp(domain);
    bool una_ok = true;
    for (size_t i = 0; i < constants.size(); ++i) {
      if (!interp.AssignConstant(constants[i], static_cast<int>(i)).ok()) {
        una_ok = false;
        break;
      }
    }
    if (una_ok) {
      size_t bit = 0;
      for (Symbol a : concepts) {
        for (size_t d = 0; d < domain; ++d, ++bit) {
          if (bits[bit]) interp.AddToConcept(a, static_cast<int>(d));
        }
      }
      for (Symbol p : attrs) {
        for (size_t s = 0; s < domain; ++s) {
          for (size_t t = 0; t < domain; ++t, ++bit) {
            if (bits[bit]) {
              interp.AddEdge(p, static_cast<int>(s), static_cast<int>(t));
            }
          }
        }
      }
      if (visit(interp)) return {true, false};
    }
    // Odometer increment.
    size_t i = 0;
    while (i < bits.size() && bits[i] == 1) bits[i++] = 0;
    if (i == bits.size()) return {false, false};
    bits[i] = 1;
  }
}

}  // namespace

BruteForceResult BruteForceSubsumes(
    const ExtSchema& sigma, const XConceptPtr& c, const XConceptPtr& d,
    const std::vector<Symbol>& concepts, const std::vector<Symbol>& attrs,
    const std::vector<Symbol>& constants, const BruteForceOptions& options) {
  BruteForceResult result;
  for (size_t domain = std::max<size_t>(1, constants.size());
       domain <= options.max_domain; ++domain) {
    auto [found, budget_hit] = Enumerate(
        domain, concepts, attrs, constants, &result.interpretations,
        options.max_interpretations,
        [&](const interp::Interpretation& interp) {
          if (!SatisfiesExtSchema(interp, sigma)) return false;
          for (size_t e = 0; e < interp.domain_size(); ++e) {
            int x = static_cast<int>(e);
            if (XEval(interp, c, x) && !XEval(interp, d, x)) return true;
          }
          return false;
        });
    if (budget_hit) return result;  // undecided
    if (found) {
      result.decided = true;
      result.subsumed = false;
      result.countermodel_domain = domain;
      return result;
    }
  }
  result.decided = true;
  result.subsumed = true;  // no countermodel up to the domain bound
  return result;
}

BruteForceResult BruteForceSubsumesQl(
    const schema::Schema& sigma, const ql::TermFactory& f, ql::ConceptId c,
    ql::ConceptId d, const std::vector<Symbol>& concepts,
    const std::vector<Symbol>& attrs, const std::vector<Symbol>& constants,
    const BruteForceOptions& options) {
  BruteForceResult result;
  for (size_t domain = std::max<size_t>(1, constants.size());
       domain <= options.max_domain; ++domain) {
    auto [found, budget_hit] = Enumerate(
        domain, concepts, attrs, constants, &result.interpretations,
        options.max_interpretations,
        [&](const interp::Interpretation& interp) {
          if (!interp::IsModelOf(interp, sigma)) return false;
          for (size_t e = 0; e < interp.domain_size(); ++e) {
            int x = static_cast<int>(e);
            if (interp::InConceptEval(interp, f, c, x) &&
                !interp::InConceptEval(interp, f, d, x)) {
              return true;
            }
          }
          return false;
        });
    if (budget_hit) return result;  // undecided
    if (found) {
      result.decided = true;
      result.subsumed = false;
      result.countermodel_domain = domain;
      return result;
    }
  }
  result.decided = true;
  result.subsumed = true;  // no countermodel up to the domain bound
  return result;
}

BruteForceResult BruteForceSatisfiable(
    const ExtSchema& sigma, const XConceptPtr& c,
    const std::vector<Symbol>& concepts, const std::vector<Symbol>& attrs,
    const std::vector<Symbol>& constants, const BruteForceOptions& options) {
  BruteForceResult result;
  for (size_t domain = std::max<size_t>(1, constants.size());
       domain <= options.max_domain; ++domain) {
    auto [found, budget_hit] = Enumerate(
        domain, concepts, attrs, constants, &result.interpretations,
        options.max_interpretations,
        [&](const interp::Interpretation& interp) {
          if (!SatisfiesExtSchema(interp, sigma)) return false;
          for (size_t e = 0; e < interp.domain_size(); ++e) {
            if (XEval(interp, c, static_cast<int>(e))) return true;
          }
          return false;
        });
    if (budget_hit) return result;
    if (found) {
      result.decided = true;
      result.subsumed = true;  // reused as "satisfiable"
      result.countermodel_domain = domain;
      return result;
    }
  }
  result.decided = true;
  result.subsumed = false;  // unsatisfiable up to the bound
  return result;
}

}  // namespace oodb::ext
