# Empty dependencies file for oodb_dl.
# This may be replaced when dependencies are built.
