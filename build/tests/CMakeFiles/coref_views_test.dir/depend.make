# Empty dependencies file for coref_views_test.
# This may be replaced when dependencies are built.
