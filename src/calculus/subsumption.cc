#include "calculus/subsumption.h"

namespace oodb::calculus {

Result<bool> SubsumptionChecker::Subsumes(ql::ConceptId c,
                                          ql::ConceptId d) const {
  const uint64_t key =
      (static_cast<uint64_t>(c) << 32) | static_cast<uint64_t>(d);
  if (options_.memoize) {
    if (std::optional<bool> cached = cache_.Lookup(key)) return *cached;
  }
  OODB_ASSIGN_OR_RETURN(SubsumptionOutcome outcome, SubsumesDetailed(c, d));
  if (options_.memoize) cache_.Insert(key, outcome.subsumed);
  return outcome.subsumed;
}

Result<SubsumptionOutcome> SubsumptionChecker::SubsumesDetailed(
    ql::ConceptId c, ql::ConceptId d) const {
  CompletionEngine::Options engine_options = options_.engine;
  engine_options.record_trace = options_.record_trace;
  CompletionEngine engine(sigma_, engine_options);
  OODB_RETURN_IF_ERROR(engine.Run(c, d));
  SubsumptionOutcome outcome;
  outcome.via_clash = engine.clash();
  outcome.subsumed = engine.clash() || engine.GoalFactHolds();
  outcome.stats = engine.stats();
  outcome.trace = engine.trace();
  return outcome;
}

Result<std::vector<bool>> SubsumptionChecker::SubsumesBatch(
    ql::ConceptId c, const std::vector<ql::ConceptId>& ds) const {
  CompletionEngine engine(sigma_, options_.engine);
  OODB_RETURN_IF_ERROR(engine.RunBatch(c, ds));
  std::vector<bool> verdicts;
  verdicts.reserve(ds.size());
  for (ql::ConceptId d : ds) {
    verdicts.push_back(engine.clash() || engine.GoalFactHoldsFor(d));
  }
  return verdicts;
}

Result<bool> SubsumptionChecker::Satisfiable(ql::ConceptId c) const {
  CompletionEngine engine(sigma_, options_.engine);
  OODB_RETURN_IF_ERROR(engine.Run(c, ql::kInvalidConcept));
  return !engine.clash();
}

Result<bool> SubsumptionChecker::Equivalent(ql::ConceptId c,
                                            ql::ConceptId d) const {
  OODB_ASSIGN_OR_RETURN(bool forward, Subsumes(c, d));
  if (!forward) return false;
  return Subsumes(d, c);
}

}  // namespace oodb::calculus
