# Empty compiler generated dependencies file for dl_frontend_test.
# This may be replaced when dependencies are built.
