// Extended schemas and the *unguarded* chase — the procedure the paper's
// guarded rule S5 deliberately avoids (Sect. 4.4, discussion after
// Prop. 4.10): materializing a witness for every necessary / qualified
// existential axiom, iterated, can create exponentially many individuals.
//
// For the Horn-like fragment handled here (isA, ∀R.A with R possibly an
// inverse, ∃P, ∃P.A — no disjunction), the chase builds the canonical
// model of the start concept, so when it terminates within budget it
// decides primitive-concept subsumption soundly and completely. The point
// of the experiments is its cost, contrasted with the guarded calculus.
#ifndef OODB_EXT_CHASE_H_
#define OODB_EXT_CHASE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/symbol.h"
#include "ql/term.h"

namespace oodb::ext {

struct ExtAxiom {
  enum class Kind : uint8_t {
    kIsA,        // A ⊑ B
    kAll,        // A ⊑ ∀R.B   (R may be inverted: Prop. 4.10(2))
    kExists,     // A ⊑ ∃P
    kExistsQ,    // A ⊑ ∃P.B   (qualified: Prop. 4.10(1))
  };
  Kind kind;
  Symbol lhs;
  ql::Attr attr;  // kAll / kExists / kExistsQ
  Symbol rhs;     // kIsA / kAll / kExistsQ
};

class ExtSchema {
 public:
  void AddIsA(Symbol a, Symbol b);
  void AddAll(Symbol a, ql::Attr r, Symbol b);
  void AddExists(Symbol a, Symbol p);
  void AddExistsQualified(Symbol a, Symbol p, Symbol b);

  const std::vector<ExtAxiom>& axioms() const { return axioms_; }
  const std::vector<ExtAxiom>& AxiomsOf(Symbol a) const;
  size_t size() const { return axioms_.size(); }

 private:
  std::vector<ExtAxiom> axioms_;
  std::unordered_map<Symbol, std::vector<ExtAxiom>> by_lhs_;
};

struct ChaseLimits {
  size_t max_individuals = 1u << 20;
  size_t max_rounds = 1u << 20;
};

struct ChaseResult {
  bool completed = false;   // false = a limit was hit
  size_t individuals = 0;
  size_t memberships = 0;
  size_t edges = 0;
  size_t rounds = 0;
  // Whether the start individual ended up in the queried concept (only
  // meaningful when `completed`).
  bool entailed = false;
};

// Chases x:start over `sigma` and reports whether x:goal is derived.
// Witness policy (deliberately unguarded): for A ⊑ ∃P.B, every individual
// in A without a P-filler *known to be in B* gets a fresh B-witness; for
// A ⊑ ∃P, every individual in A without any P-filler gets a fresh witness.
ChaseResult UnguardedChase(const ExtSchema& sigma, Symbol start, Symbol goal,
                           const ChaseLimits& limits = ChaseLimits());

}  // namespace oodb::ext

#endif  // OODB_EXT_CHASE_H_
