#!/bin/sh
# Error contract of the oodbsub CLI: every parse/validation failure must
# exit non-zero with diagnostics on stderr and NOTHING on stdout, so
# scripted callers (and the CI smoke) can detect errors reliably.
#
# usage: cli_errors_test.sh <path-to-oodbsub> <examples-data-dir>
BIN="$1"
DATA="$2"
TMP="${TMPDIR:-/tmp}/oodbsub_cli_errors.$$"
mkdir -p "$TMP"
trap 'rm -rf "$TMP"' EXIT
failures=0

# expect_failure <name> <expected-exit> -- <args...>
# expected-exit 'any' accepts any non-zero code.
expect_failure() {
  name="$1"; want="$2"; shift 3
  "$BIN" "$@" >"$TMP/out" 2>"$TMP/err"
  code=$?
  if [ "$code" -eq 0 ]; then
    echo "FAIL $name: exit 0, expected failure"; failures=$((failures+1)); return
  fi
  if [ "$want" != any ] && [ "$code" -ne "$want" ]; then
    echo "FAIL $name: exit $code, expected $want"; failures=$((failures+1)); return
  fi
  if [ -s "$TMP/out" ]; then
    echo "FAIL $name: diagnostics leaked to stdout:"; cat "$TMP/out"
    failures=$((failures+1)); return
  fi
  if [ ! -s "$TMP/err" ]; then
    echo "FAIL $name: no diagnostics on stderr"; failures=$((failures+1)); return
  fi
  echo "ok   $name (exit $code)"
}

printf 'Class Broken isA {' > "$TMP/broken.dl"

expect_failure missing-schema-file    1  -- translate "$TMP/does-not-exist.dl"
expect_failure syntax-error-schema    1  -- translate "$TMP/broken.dl"
expect_failure unknown-class          1  -- check "$DATA/medical.dl" NoSuchClass ViewPatient
expect_failure unknown-state-file     1  -- query "$DATA/medical.dl" "$TMP/none.odb" QueryPatient
expect_failure unknown-view           1  -- optimize "$DATA/medical.dl" "$DATA/hospital.odb" QueryPatient NoSuchView
expect_failure unknown-command        64 -- frobnicate "$DATA/medical.dl"
expect_failure bad-thread-flag        64 -- classify "$DATA/medical.dl" --threads=0
expect_failure no-arguments           64 --
expect_failure rpc-unreachable        1  -- rpc 127.0.0.1:1 PING
expect_failure rpc-bad-target         64 -- rpc not-a-target PING

exit $failures
