// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P): the
// core invariants of the calculus across a grid of seeds and workload
// shapes. Complements calculus_property_test.cc with systematic coverage
// of the generator parameter space.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "base/rng.h"
#include "base/strings.h"
#include "calculus/canonical.h"
#include "calculus/engine.h"
#include "calculus/subsumption.h"
#include "cq/cq.h"
#include "gen/generators.h"
#include "interp/eval.h"
#include "interp/model_gen.h"
#include "interp/signature.h"
#include "ql/print.h"

namespace oodb::calculus {
namespace {

struct SweepParam {
  uint64_t seed;
  size_t num_classes;
  size_t num_attrs;
  size_t max_conjuncts;
  size_t max_path_length;
  bool with_schema;

  std::string Name() const {
    return oodb::StrCat("seed", seed, "_c", num_classes, "_a", num_attrs, "_k",
                  max_conjuncts, "_p", max_path_length,
                  with_schema ? "_sigma" : "_empty");
  }
};

class CalculusSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  struct Instance {
    SymbolTable symbols;
    std::unique_ptr<ql::TermFactory> terms;
    std::unique_ptr<schema::Schema> sigma;
    gen::GeneratedSchema sig;
    ql::ConceptId c = ql::kInvalidConcept;
    ql::ConceptId d = ql::kInvalidConcept;
  };

  std::unique_ptr<Instance> MakeInstance(Rng& rng) {
    const SweepParam& p = GetParam();
    auto instance = std::make_unique<Instance>();
    instance->terms = std::make_unique<ql::TermFactory>(&instance->symbols);
    instance->sigma =
        std::make_unique<schema::Schema>(instance->terms.get());
    gen::SchemaGenOptions schema_options;
    schema_options.num_classes = p.num_classes;
    schema_options.num_attrs = p.num_attrs;
    if (!p.with_schema) {
      schema_options.isa_prob = 0;
      schema_options.value_restrictions = 0;
      schema_options.typing_prob = 0;
    }
    instance->sig =
        gen::GenerateSchema(instance->sigma.get(), rng, schema_options);
    gen::ConceptGenOptions concept_options;
    concept_options.max_conjuncts = p.max_conjuncts;
    concept_options.max_path_length = p.max_path_length;
    instance->c = gen::GenerateConcept(instance->sig, instance->terms.get(),
                                       rng, concept_options);
    instance->d = gen::GenerateConcept(instance->sig, instance->terms.get(),
                                       rng, concept_options);
    return instance;
  }
};

TEST_P(CalculusSweep, VerdictsAreSoundAndComplete) {
  Rng rng(GetParam().seed);
  for (int round = 0; round < 25; ++round) {
    auto instance = MakeInstance(rng);
    CompletionEngine engine(*instance->sigma);
    ASSERT_TRUE(engine.Run(instance->c, instance->d).ok());
    bool verdict = engine.clash() || engine.GoalFactHolds();

    if (verdict && !engine.clash()) {
      // Soundness: spot-check on a random Σ-model.
      interp::Signature isig = interp::CollectSignature(
          *instance->terms, {instance->c, instance->d},
          instance->sigma.get());
      auto model = interp::GenerateModel(*instance->sigma, isig,
                                         interp::ModelGenOptions(), rng);
      ASSERT_TRUE(model.ok());
      for (size_t e = 0; e < model->domain_size(); ++e) {
        int x = static_cast<int>(e);
        if (interp::InConceptEval(*model, *instance->terms, instance->c,
                                  x)) {
          ASSERT_TRUE(interp::InConceptEval(*model, *instance->terms,
                                            instance->d, x));
        }
      }
    }
    if (!verdict) {
      // Completeness: the canonical countermodel must refute.
      auto model = BuildCanonicalModel(engine, *instance->sigma);
      ASSERT_TRUE(model.ok());
      ASSERT_TRUE(interp::IsModelOf(model->interpretation, *instance->sigma));
      ASSERT_TRUE(interp::InConceptEval(model->interpretation,
                                        *instance->terms, instance->c,
                                        model->goal_element));
      ASSERT_FALSE(interp::InConceptEval(model->interpretation,
                                         *instance->terms, instance->d,
                                         model->goal_element));
    }
  }
}

TEST_P(CalculusSweep, IndividualBoundAndDeterminismHold) {
  Rng rng(GetParam().seed + 1);
  for (int round = 0; round < 25; ++round) {
    auto instance = MakeInstance(rng);
    SubsumptionChecker checker(*instance->sigma);
    auto first = checker.SubsumesDetailed(instance->c, instance->d);
    auto second = checker.SubsumesDetailed(instance->c, instance->d);
    ASSERT_TRUE(first.ok() && second.ok());
    EXPECT_EQ(first->subsumed, second->subsumed);
    EXPECT_EQ(first->stats.facts, second->stats.facts);
    size_t bound = instance->terms->ConceptSize(instance->c) *
                   instance->terms->ConceptSize(instance->d);
    EXPECT_LE(first->stats.individuals, bound + 1);
  }
}

TEST_P(CalculusSweep, WeakeningIsAlwaysDetected) {
  Rng rng(GetParam().seed + 2);
  for (int round = 0; round < 25; ++round) {
    auto instance = MakeInstance(rng);
    ql::ConceptId weaker = gen::WeakenConcept(
        *instance->sigma, instance->terms.get(), instance->c, rng, 3);
    SubsumptionChecker checker(*instance->sigma);
    auto verdict = checker.Subsumes(instance->c, weaker);
    ASSERT_TRUE(verdict.ok());
    EXPECT_TRUE(*verdict)
        << ql::ConceptToString(*instance->terms, instance->c) << "  vs  "
        << ql::ConceptToString(*instance->terms, weaker);
  }
}

TEST_P(CalculusSweep, EmptySchemaMatchesCqContainment) {
  if (GetParam().with_schema) GTEST_SKIP() << "empty-Σ variants only";
  Rng rng(GetParam().seed + 3);
  for (int round = 0; round < 25; ++round) {
    auto instance = MakeInstance(rng);
    SubsumptionChecker checker(*instance->sigma);
    auto verdict = checker.Subsumes(instance->c, instance->d);
    ASSERT_TRUE(verdict.ok());
    auto q1 = cq::ConceptToCq(*instance->terms, instance->c,
                              &instance->symbols);
    auto q2 = cq::ConceptToCq(*instance->terms, instance->d,
                              &instance->symbols);
    ASSERT_TRUE(q1.ok() && q2.ok());
    EXPECT_EQ(*verdict, cq::CqContained(*q1, *q2));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CalculusSweep,
    ::testing::Values(
        SweepParam{1001, 6, 3, 3, 2, true},
        SweepParam{1002, 6, 3, 3, 2, false},
        SweepParam{1003, 12, 6, 4, 3, true},
        SweepParam{1004, 12, 6, 4, 3, false},
        SweepParam{1005, 20, 10, 6, 4, true},
        SweepParam{1006, 20, 10, 6, 4, false},
        SweepParam{1007, 3, 2, 2, 1, true},
        SweepParam{1008, 3, 2, 8, 5, true}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return info.param.Name();
    });

}  // namespace
}  // namespace oodb::calculus
