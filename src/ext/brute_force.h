// Brute-force model enumeration for the extended language: the only
// generally applicable decision procedure once ∀, ⊔ or ¬ enter the query
// language — and deliberately exponential (experiments E8/E9).
//
// Enumerates every interpretation over the given signature with domain
// size 1..max_domain and evaluates the concepts directly. Sound for
// refutation (a found countermodel definitely kills the subsumption).
// Complete only up to the domain bound; for core SL/QL inputs the paper's
// canonical-model argument bounds countermodels by M·N+1 elements, so a
// matching bound makes the answer exact on small inputs.
#ifndef OODB_EXT_BRUTE_FORCE_H_
#define OODB_EXT_BRUTE_FORCE_H_

#include <cstdint>
#include <vector>

#include "base/symbol.h"
#include "ext/chase.h"
#include "ext/xconcept.h"
#include "interp/interpretation.h"
#include "schema/schema.h"

namespace oodb::ext {

struct BruteForceOptions {
  size_t max_domain = 3;
  // Cap on enumerated interpretations (the count grows doubly
  // exponentially in signature × domain).
  uint64_t max_interpretations = 1ull << 26;
};

struct BruteForceResult {
  bool decided = false;        // false = enumeration cap was hit
  bool subsumed = false;       // meaningful when decided
  uint64_t interpretations = 0;
  size_t countermodel_domain = 0;  // domain size of the countermodel if any
};

// Evaluates an extended concept over an interpretation at element d.
bool XEval(const interp::Interpretation& interp, const XConceptPtr& c, int d);

// Whether `interp` satisfies every axiom of the extended schema.
bool SatisfiesExtSchema(const interp::Interpretation& interp,
                        const ExtSchema& sigma);

// Decides C ⊑_Σ D by enumerating Σ-models over the signature
// (concepts/attrs/constants must cover Σ, C and D).
BruteForceResult BruteForceSubsumes(
    const ExtSchema& sigma, const XConceptPtr& c, const XConceptPtr& d,
    const std::vector<Symbol>& concepts, const std::vector<Symbol>& attrs,
    const std::vector<Symbol>& constants,
    const BruteForceOptions& options = BruteForceOptions());

// Core-language oracle: decides C ⊑_Σ D for pure QL concepts over an SL
// schema by the same enumeration, evaluating Table-1 semantics directly
// (interp::IsModelOf / interp::InConceptEval). Unlike the XConcept
// overload this handles agreements, functional axioms and the UNA —
// everything the core calculus supports — so it is the reference the
// differential tests pin SubsumptionChecker against. Exact up to the
// domain bound: by Props. 4.5/4.6 a non-subsumption always has a
// countermodel of canonical-interpretation size, so callers that pick
// max_domain from that size get an exact answer.
BruteForceResult BruteForceSubsumesQl(
    const schema::Schema& sigma, const ql::TermFactory& f, ql::ConceptId c,
    ql::ConceptId d, const std::vector<Symbol>& concepts,
    const std::vector<Symbol>& attrs, const std::vector<Symbol>& constants,
    const BruteForceOptions& options = BruteForceOptions());

// Satisfiability of C w.r.t. Σ by the same enumeration.
BruteForceResult BruteForceSatisfiable(
    const ExtSchema& sigma, const XConceptPtr& c,
    const std::vector<Symbol>& concepts, const std::vector<Symbol>& attrs,
    const std::vector<Symbol>& constants,
    const BruteForceOptions& options = BruteForceOptions());

}  // namespace oodb::ext

#endif  // OODB_EXT_BRUTE_FORCE_H_
