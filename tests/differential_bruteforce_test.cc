// Differential property test: the polynomial calculus vs. brute-force
// model enumeration on random (Σ, C, D) inputs.
//
// BruteForceSubsumesQl enumerates every Σ-interpretation up to a domain
// bound and evaluates Table-1 semantics directly — an oracle that shares
// no code path with the completion engine. For subsumed verdicts any
// bound is a valid refutation attempt; for not-subsumed verdicts the
// canonical countermodel (Props. 4.5/4.6) gives the exact bound the
// enumeration needs, so agreement is checked exactly, not just
// one-sidedly. Both verdict branches of Theorem 4.7 (clash and o:D) are
// pinned by deterministic cases and counted in the random sweep.
#include <cstdio>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "calculus/canonical.h"
#include "calculus/engine.h"
#include "calculus/subsumption.h"
#include "ext/brute_force.h"
#include "gen/generators.h"
#include "interp/signature.h"
#include "ql/print.h"
#include "schema/schema.h"

namespace oodb {
namespace {

// Interpretation count for one domain size: 2 bits per (concept, element)
// and (attr, element, element) slot.
double EnumerationBits(const interp::Signature& sig, size_t domain) {
  return static_cast<double>(sig.concepts.size() * domain +
                             sig.attrs.size() * domain * domain);
}

TEST(DifferentialBruteForce, ClashBranchDeterministic) {
  SymbolTable symbols;
  ql::TermFactory f(&symbols);
  schema::Schema sigma(&f);
  Symbol person = symbols.Intern("Person");
  Symbol doctor = symbols.Intern("Doctor");
  Symbol name = symbols.Intern("name");
  ASSERT_TRUE(sigma.AddFunctional(person, name).ok());

  // Person with two distinct names: Σ-unsatisfiable under (≤1 name) + UNA,
  // so it is subsumed by anything via the clash branch.
  ql::ConceptId c = f.AndAll(
      {f.Primitive(person),
       f.Exists(f.Step(ql::Attr{name, false}, f.Singleton("alice"))),
       f.Exists(f.Step(ql::Attr{name, false}, f.Singleton("bob")))});
  ql::ConceptId d = f.Primitive(doctor);

  calculus::SubsumptionChecker checker(sigma);
  auto outcome = checker.SubsumesDetailed(c, d);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->subsumed);
  EXPECT_TRUE(outcome->via_clash);

  interp::Signature sig = interp::CollectSignature(f, {c, d}, &sigma);
  ext::BruteForceOptions options;
  options.max_domain = 3;
  ext::BruteForceResult brute = ext::BruteForceSubsumesQl(
      sigma, f, c, d, sig.concepts, sig.attrs, sig.constants, options);
  ASSERT_TRUE(brute.decided);
  EXPECT_TRUE(brute.subsumed);
}

TEST(DifferentialBruteForce, GoalBranchDeterministic) {
  SymbolTable symbols;
  ql::TermFactory f(&symbols);
  schema::Schema sigma(&f);
  Symbol a = symbols.Intern("A");
  Symbol b = symbols.Intern("B");
  Symbol p = symbols.Intern("p");
  ASSERT_TRUE(sigma.AddIsA(a, b).ok());

  // A ⊓ ∃(p:B) ⊑_Σ B ⊓ ∃(p:⊤) through rule applications, not a clash.
  ql::ConceptId c =
      f.And(f.Primitive(a), f.Exists(f.Step(ql::Attr{p, false},
                                            f.Primitive(b))));
  ql::ConceptId d =
      f.And(f.Primitive(b), f.ExistsAttr(ql::Attr{p, false}));

  calculus::SubsumptionChecker checker(sigma);
  auto outcome = checker.SubsumesDetailed(c, d);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->subsumed);
  EXPECT_FALSE(outcome->via_clash);

  interp::Signature sig = interp::CollectSignature(f, {c, d}, &sigma);
  ext::BruteForceOptions options;
  options.max_domain = 3;
  ext::BruteForceResult brute = ext::BruteForceSubsumesQl(
      sigma, f, c, d, sig.concepts, sig.attrs, sig.constants, options);
  ASSERT_TRUE(brute.decided);
  EXPECT_TRUE(brute.subsumed);

  // And the converse direction must fail on both sides.
  auto back = checker.SubsumesDetailed(d, c);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->subsumed);
  ext::BruteForceResult brute_back = ext::BruteForceSubsumesQl(
      sigma, f, d, c, sig.concepts, sig.attrs, sig.constants, options);
  ASSERT_TRUE(brute_back.decided);
  EXPECT_FALSE(brute_back.subsumed);
}

TEST(DifferentialBruteForce, RandomPairsAgree) {
  Rng rng(20260806);
  const int kRounds = 500;

  // Tiny signatures keep the enumeration exact AND affordable: the
  // interpretation count is 2^(|concepts|·n + |attrs|·n²).
  gen::SchemaGenOptions schema_options;
  schema_options.num_classes = 3;
  schema_options.num_attrs = 1;
  schema_options.num_constants = 2;
  schema_options.value_restrictions = 3;
  schema_options.necessary_prob = 0.4;
  schema_options.functional_prob = 0.4;
  schema_options.typing_prob = 0.5;

  gen::ConceptGenOptions concept_options;
  concept_options.max_conjuncts = 2;
  concept_options.max_path_length = 2;
  concept_options.max_filter_depth = 0;
  concept_options.singleton_prob = 0.3;

  int compared = 0, skipped = 0;
  int subsumed_compared = 0, clash_compared = 0, goal_compared = 0;
  int not_subsumed_compared = 0;

  for (int round = 0; round < kRounds; ++round) {
    SymbolTable symbols;
    ql::TermFactory f(&symbols);
    schema::Schema sigma(&f);
    gen::GeneratedSchema sig = gen::GenerateSchema(&sigma, rng,
                                                   schema_options);
    ql::ConceptId c = gen::GenerateConcept(sig, &f, rng, concept_options);
    // Every 10th round, seed a clash: force the attribute functional and
    // conjoin two distinct singleton fillers, making C Σ-unsatisfiable —
    // the generator alone almost never trips the clash branch.
    if (round % 10 == 0) {
      Symbol cls = sig.classes[rng.Index(sig.classes.size())];
      Symbol attr = sig.attrs[rng.Index(sig.attrs.size())];
      ASSERT_TRUE(sigma.AddFunctional(cls, attr).ok());
      c = f.AndAll(
          {f.Primitive(cls), c,
           f.Exists(f.Step(ql::Attr{attr, false}, f.Singleton("clash_a"))),
           f.Exists(f.Step(ql::Attr{attr, false}, f.Singleton("clash_b")))});
    }
    // Half the rounds weaken C so subsumed verdicts are well represented.
    ql::ConceptId d = (round % 2 == 0)
                          ? gen::GenerateConcept(sig, &f, rng, concept_options)
                          : gen::WeakenConcept(sigma, &f, c, rng, 2);

    calculus::CompletionEngine engine(sigma);
    if (!engine.Run(c, d).ok()) {
      ++skipped;
      continue;
    }
    const bool via_clash = engine.clash();
    const bool verdict = via_clash || engine.GoalFactHolds();

    interp::Signature isig = interp::CollectSignature(f, {c, d}, &sigma);
    ext::BruteForceOptions options;
    options.max_interpretations = 1ull << 22;
    if (verdict) {
      // Any bound is a valid refutation attempt; keep it cheap.
      options.max_domain = 2;
    } else {
      // The canonical interpretation is a countermodel (Props. 4.5/4.6);
      // scanning up to exactly its size makes the oracle exact.
      auto model = calculus::BuildCanonicalModel(engine, sigma);
      ASSERT_TRUE(model.ok());
      size_t needed = model->interpretation.domain_size();
      if (needed > 3 || EnumerationBits(isig, needed) > 20.0) {
        ++skipped;  // countermodel too large to enumerate affordably
        continue;
      }
      options.max_domain = needed;
    }

    ext::BruteForceResult brute = ext::BruteForceSubsumesQl(
        sigma, f, c, d, isig.concepts, isig.attrs, isig.constants, options);
    if (!brute.decided) {
      ++skipped;
      continue;
    }

    EXPECT_EQ(verdict, brute.subsumed)
        << "round " << round << ": calculus says "
        << (verdict ? "SUBSUMED" : "not subsumed") << " but brute force "
        << "disagrees\n  C = " << ql::ConceptToString(f, c)
        << "\n  D = " << ql::ConceptToString(f, d);
    ++compared;
    if (verdict) {
      ++subsumed_compared;
      via_clash ? ++clash_compared : ++goal_compared;
    } else {
      ++not_subsumed_compared;
    }
  }

  std::printf("differential: %d compared (%d subsumed: %d clash / %d goal; "
              "%d not subsumed), %d skipped\n",
              compared, subsumed_compared, clash_compared, goal_compared,
              not_subsumed_compared, skipped);

  // The sweep must genuinely exercise the procedure: plenty of compared
  // pairs, and every verdict class represented (the fixed seed makes
  // these counts deterministic).
  EXPECT_GE(compared, 300);
  EXPECT_GE(subsumed_compared, 40);
  EXPECT_GE(not_subsumed_compared, 40);
  EXPECT_GE(clash_compared, 1);
  EXPECT_GE(goal_compared, 10);
}

}  // namespace
}  // namespace oodb
