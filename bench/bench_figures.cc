// Experiments E1/E2/E3/E10: regenerates the paper's figures from the
// implementation —
//   Figure 2: FOL translation of the Patient / skilled_in declarations
//   Figure 6: SL schema axioms of the medical database
//   Figure 4: FOL definition of QueryPatient
//   Sect. 3.2: the concepts C_Q and D_V
//   Figure 11: the completion trace deciding C_Q ⊑_Σ D_V
//   Sect. 4.4: skolemized variables-on-paths queries
#include <cstdio>

#include "bench_util.h"
#include "calculus/subsumption.h"
#include "dl/analyzer.h"
#include "dl/translate.h"
#include "ql/fol.h"
#include "ql/print.h"
#include "schema/schema.h"

namespace {

// The paper's running example (Figures 1, 3, 5) in DL syntax.
constexpr const char* kMedicalSource = R"(
Class Person with
  attribute, necessary, single
    name: String
end Person

Class Patient isA Person with
  attribute
    takes: Drug
    consults: Doctor
  attribute, necessary
    suffers: Disease
  constraint:
    not (this in Doctor)
end Patient

Class Doctor isA Person with
  attribute
    skilled_in: Disease
end Doctor

Class Male isA Person with
end Male

Class Female isA Person with
end Female

Class Drug with
end Drug

Class Disease isA Topic with
end Disease

Class String with
end String

Class Topic with
end Topic

Attribute skilled_in with
  domain: Person
  range: Topic
  inverse: specialist
end skilled_in

Attribute takes with
  domain: Patient
  range: Drug
end takes

Attribute consults with
  domain: Patient
  range: Doctor
end consults

Attribute suffers with
  domain: Patient
  range: Disease
end suffers

Attribute name with
  domain: Person
  range: String
end name

QueryClass QueryPatient isA Male, Patient with
  derived
    l1: (consults: Female)
    l2: suffers.(specialist: Doctor)
  where
    l1 = l2
  constraint:
    forall d/Drug not (this takes d) or (d = Aspirin)
end QueryPatient

QueryClass ViewPatient isA Patient with
  derived
    (name: String)
    l1: (consults: Doctor).(skilled_in: Disease)
    l2: (suffers: Disease)
  where
    l1 = l2
end ViewPatient

QueryClass CoQueryPatient isA Patient with
  derived
    (consults: ?d)
    (suffers: Disease).(specialist: ?d)
end CoQueryPatient
)";

}  // namespace

int main() {
  using namespace oodb;

  SymbolTable symbols;
  ql::TermFactory terms(&symbols);
  schema::Schema sigma(&terms);
  auto model = dl::ParseAndAnalyze(kMedicalSource, &symbols);
  if (!model.ok()) {
    std::printf("parse error: %s\n", model.status().ToString().c_str());
    return 1;
  }
  dl::Translator translator(*model, &terms);
  if (auto s = translator.BuildSchema(&sigma); !s.ok()) {
    std::printf("translation error: %s\n", s.ToString().c_str());
    return 1;
  }

  bench::Section("Figure 2: declarations of Patient and skilled_in in logic");
  for (const char* name : {"Patient"}) {
    auto formulas = translator.SchemaClassToFol(symbols.Find(name));
    for (const auto& f : *formulas) {
      std::printf("  %s\n", ql::FormulaToString(terms, f).c_str());
    }
  }
  auto attr_formulas = translator.AttributeToFol(symbols.Find("skilled_in"));
  for (const auto& f : *attr_formulas) {
    std::printf("  %s\n", ql::FormulaToString(terms, f).c_str());
  }

  bench::Section("Figure 6: schema axioms of the medical database");
  for (const auto& ax : sigma.inclusions()) {
    std::printf("  %s ⊑ %s\n", symbols.Name(ax.lhs).c_str(),
                ql::ConceptToString(terms, ax.rhs).c_str());
  }
  for (const auto& ax : sigma.typings()) {
    std::printf("  %s ⊑ %s × %s\n", symbols.Name(ax.attr).c_str(),
                symbols.Name(ax.domain).c_str(),
                symbols.Name(ax.range).c_str());
  }

  bench::Section("Figure 4: the query QueryPatient in logic");
  auto query_fol = translator.QueryClassToFol(symbols.Find("QueryPatient"));
  std::printf("  QueryPatient(t) ⇔ %s\n",
              ql::FormulaToString(terms, *query_fol).c_str());

  bench::Section("Section 3.2: the concepts C_Q and D_V");
  auto cq = *translator.QueryConcept(symbols.Find("QueryPatient"));
  auto dv = *translator.QueryConcept(symbols.Find("ViewPatient"));
  std::printf("  C_Q = %s\n", ql::ConceptToString(terms, cq).c_str());
  std::printf("  D_V = %s\n", ql::ConceptToString(terms, dv).c_str());

  bench::Section("Figure 11: completion trace for C_Q ⊑_Σ D_V");
  calculus::SubsumptionChecker::Options options;
  options.record_trace = true;
  calculus::SubsumptionChecker checker(sigma, options);
  auto outcome = checker.SubsumesDetailed(cq, dv);
  for (const auto& event : outcome->trace) {
    std::printf("  [%s] %s\n", calculus::RuleName(event.rule),
                event.text.c_str());
  }
  std::printf("\n  verdict: C_Q %s D_V  (%zu rule applications, "
              "%zu individuals, %zu facts)\n",
              outcome->subsumed ? "⊑_Σ" : "⋢_Σ",
              static_cast<size_t>(outcome->stats.TotalApplications()),
              outcome->stats.individuals, outcome->stats.facts);
  auto reverse = checker.Subsumes(dv, cq);
  std::printf("  reverse: D_V %s C_Q\n", *reverse ? "⊑_Σ" : "⋢_Σ");

  bench::Section(
      "Sect. 4.4 (variables on paths): skolemized coreference query");
  auto co = *translator.QueryConcept(symbols.Find("CoQueryPatient"));
  std::printf("  C(CoQueryPatient) = %s\n",
              ql::ConceptToString(terms, co).c_str());
  auto co_in_view = checker.Subsumes(co, dv);
  std::printf("  CoQueryPatient ⊑_Σ ViewPatient: %s\n",
              *co_in_view ? "yes" : "no");

  return 0;
}
