file(REMOVE_RECURSE
  "CMakeFiles/deduction_printer_test.dir/deduction_printer_test.cc.o"
  "CMakeFiles/deduction_printer_test.dir/deduction_printer_test.cc.o.d"
  "deduction_printer_test"
  "deduction_printer_test.pdb"
  "deduction_printer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deduction_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
