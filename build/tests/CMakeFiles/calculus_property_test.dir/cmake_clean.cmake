file(REMOVE_RECURSE
  "CMakeFiles/calculus_property_test.dir/calculus_property_test.cc.o"
  "CMakeFiles/calculus_property_test.dir/calculus_property_test.cc.o.d"
  "calculus_property_test"
  "calculus_property_test.pdb"
  "calculus_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calculus_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
