file(REMOVE_RECURSE
  "CMakeFiles/oodb_ext.dir/brute_force.cc.o"
  "CMakeFiles/oodb_ext.dir/brute_force.cc.o.d"
  "CMakeFiles/oodb_ext.dir/chase.cc.o"
  "CMakeFiles/oodb_ext.dir/chase.cc.o.d"
  "CMakeFiles/oodb_ext.dir/disjunction.cc.o"
  "CMakeFiles/oodb_ext.dir/disjunction.cc.o.d"
  "CMakeFiles/oodb_ext.dir/families.cc.o"
  "CMakeFiles/oodb_ext.dir/families.cc.o.d"
  "CMakeFiles/oodb_ext.dir/xconcept.cc.o"
  "CMakeFiles/oodb_ext.dir/xconcept.cc.o.d"
  "liboodb_ext.a"
  "liboodb_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oodb_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
