# Empty dependencies file for constraint_eval_test.
# This may be replaced when dependencies are built.
