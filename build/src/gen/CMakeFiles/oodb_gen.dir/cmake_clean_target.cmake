file(REMOVE_RECURSE
  "liboodb_gen.a"
)
