#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <utility>

#include "base/strings.h"

namespace oodb::server {

Client::Client(int fd)
    : fd_(fd), reader_(std::make_unique<FrameReader>(fd)) {}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), reader_(std::move(other.reader_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    reader_ = std::move(other.reader_);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<Client> Client::Connect(const std::string& host, int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return InternalError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError(StrCat("bad host address '", host, "'"));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return FailedPreconditionError(
        StrCat("cannot connect to ", host, ":", port));
  }
  return Client(fd);
}

Result<std::string> Client::Roundtrip(const std::string& line,
                                      const std::string* payload) {
  std::string frame = line;
  frame += '\n';
  if (payload != nullptr) {
    frame += *payload;
    frame += '\n';
  }
  if (!SendAll(fd_, frame)) {
    return InternalError("connection lost while sending");
  }
  std::string reply;
  if (!reader_->ReadLine(&reply)) {
    return InternalError("connection lost while awaiting reply");
  }
  if (reply == "BUSY") return ResourceExhaustedError("BUSY");
  if (reply.rfind("ERR ", 0) == 0) {
    std::string rest = reply.substr(4);
    size_t space = rest.find(' ');
    std::string code = rest.substr(0, space);
    std::string message =
        space == std::string::npos ? "" : rest.substr(space + 1);
    return FailedPreconditionError(StrCat(code, ": ", message));
  }
  if (reply.rfind("OK ", 0) != 0) {
    return InternalError(StrCat("malformed reply '", reply, "'"));
  }
  const char* digits = reply.c_str() + 3;
  char* end = nullptr;
  unsigned long long nbytes = std::strtoull(digits, &end, 10);
  // end == digits: no digits consumed ("OK " with an empty byte count).
  if (end == nullptr || end == digits || *end != '\0') {
    return InternalError(StrCat("malformed reply '", reply, "'"));
  }
  std::string body;
  if (!reader_->ReadPayload(static_cast<size_t>(nbytes), &body)) {
    return InternalError("connection lost while reading reply payload");
  }
  return body;
}

Status Client::Ping() { return Roundtrip("PING").status(); }

Result<std::string> Client::Load(const std::string& session,
                                 const std::string& dl_source) {
  return Roundtrip(StrCat("LOAD ", session, " ", dl_source.size()),
                   &dl_source);
}

Result<std::string> Client::LoadState(const std::string& session,
                                      const std::string& odb_source) {
  return Roundtrip(StrCat("STATE ", session, " ", odb_source.size()),
                   &odb_source);
}

Result<size_t> Client::DefineView(const std::string& session,
                                  const std::string& query_class) {
  OODB_ASSIGN_OR_RETURN(std::string body,
                        Roundtrip(StrCat("VIEW ", session, " ", query_class)));
  if (body.rfind("extent=", 0) != 0) {
    return InternalError(StrCat("malformed VIEW reply '", body, "'"));
  }
  return static_cast<size_t>(std::strtoull(body.c_str() + 7, nullptr, 10));
}

Result<std::string> Client::Undefine(const std::string& session,
                                     const std::string& query_class) {
  return Roundtrip(StrCat("UNDEFINE ", session, " ", query_class));
}

Result<bool> Client::Check(const std::string& session, const std::string& c,
                           const std::string& d) {
  OODB_ASSIGN_OR_RETURN(
      std::string body,
      Roundtrip(StrCat("CHECK ", session, " ", c, " ", d)));
  if (body == "subsumed=true") return true;
  if (body == "subsumed=false") return false;
  return InternalError(StrCat("malformed CHECK reply '", body, "'"));
}

Result<std::string> Client::Classify(const std::string& session) {
  return Roundtrip(StrCat("CLASSIFY ", session));
}

Result<std::string> Client::Optimize(const std::string& session,
                                     const std::string& query_class) {
  return Roundtrip(StrCat("OPTIMIZE ", session, " ", query_class));
}

Result<std::string> Client::Stats(const std::string& session) {
  return Roundtrip(session.empty() ? std::string("STATS")
                                   : StrCat("STATS ", session));
}

Result<std::string> Client::Metrics() { return Roundtrip("METRICS"); }

Result<std::string> Client::TraceLog(size_t n) {
  return Roundtrip(StrCat("TRACE ", n));
}

Result<std::string> Client::Shutdown() { return Roundtrip("SHUTDOWN"); }

}  // namespace oodb::server
