#include "calculus/prefilter.h"

#include <utility>

#include "base/sync.h"

namespace oodb::calculus {

namespace {
using ql::ConceptId;
using ql::ConceptKind;
using ql::ConceptNode;
using ql::Restriction;
}  // namespace

const ConceptSignature& StructuralPreFilter::QuerySignature(
    ql::ConceptId c) const {
  return Memoize(&query_sigs_, c, /*query_side=*/true);
}

const ConceptSignature& StructuralPreFilter::TargetSignature(
    ql::ConceptId d) const {
  return Memoize(&target_sigs_, d, /*query_side=*/false);
}

const ConceptSignature& StructuralPreFilter::Memoize(
    SignatureMap* map, ql::ConceptId id, bool query_side) const {
  {
    base::MutexLock lock(&mu_);
    auto it = map->find(id);
    if (it != map->end()) return *it->second;
  }
  // Compute outside the lock: signature construction walks the term
  // arena and the schema indexes, both lock-free reads.
  auto sig = std::make_unique<const ConceptSignature>(
      query_side ? ComputeQuerySignature(id) : ComputeTargetSignature(id));
  base::MutexLock lock(&mu_);
  auto [it, inserted] = map->emplace(id, std::move(sig));
  return *it->second;
}

ConceptSignature StructuralPreFilter::ComputeQuerySignature(
    ql::ConceptId c) const {
  const ql::TermFactory& f = sigma_.terms();
  ConceptSignature sig;
  sig.filterable = true;

  // Seed sets: everything syntactically mentioned anywhere in C
  // (memberships and edges can appear at any node of the completion, and
  // merges can move them onto the root, so the closure is global).
  std::vector<Symbol> prim_worklist;
  std::vector<Symbol> attr_worklist;
  auto add_prim = [&](Symbol a) {
    if (!sig.prims.Test(a)) {
      sig.prims.Set(a);
      prim_worklist.push_back(a);
    }
  };
  auto add_attr = [&](Symbol p) {
    if (!sig.attrs.Test(p)) {
      sig.attrs.Set(p);
      attr_worklist.push_back(p);
    }
  };

  for (ConceptId sub : f.Subconcepts(c)) {
    const ConceptNode& n = f.node(sub);
    switch (n.kind) {
      case ConceptKind::kPrimitive:
        add_prim(n.sym);
        break;
      case ConceptKind::kSingleton:
        if (!sig.constants.Test(n.sym)) {
          sig.constants.Set(n.sym);
          ++sig.num_constants;
        }
        break;
      case ConceptKind::kExists:
      case ConceptKind::kAgree:
        // Path filters are separate subconcepts; only the step
        // attributes need collecting here. Orientation is ignored: an
        // edge s P t makes P available from s and P⁻¹ from t, and
        // merges can put the root at either end.
        for (const Restriction& r : f.path(n.path)) {
          add_attr(r.attr.prim);
        }
        break;
      case ConceptKind::kAll:
      case ConceptKind::kAtMostOne:
        sig.filterable = false;  // non-QL: let the engine raise the error
        break;
      default:
        break;
    }
  }
  if (!sig.filterable) return sig;

  // Fixpoint over the schema rules that can mint new memberships or
  // edges: S1 (isA supers), S2 (value-restriction ranges), S3/S6
  // (typing domains and ranges of any live attribute), S5 (necessary
  // attributes of any live class). Each addition is monotone, so the
  // worklists terminate after at most |Σ| symbols.
  while (!prim_worklist.empty() || !attr_worklist.empty()) {
    if (!prim_worklist.empty()) {
      Symbol a = prim_worklist.back();
      prim_worklist.pop_back();
      for (Symbol super : sigma_.SuperPrimitives(a)) add_prim(super);
      for (const auto& [attr, range] : sigma_.ValueRestrictionsOf(a)) {
        (void)attr;
        add_prim(range);
      }
      for (Symbol p : sigma_.NecessaryAttrs(a)) add_attr(p);
      continue;
    }
    Symbol p = attr_worklist.back();
    attr_worklist.pop_back();
    for (const schema::TypingAxiom& typing : sigma_.TypingsOf(p)) {
      add_prim(typing.domain);
      add_prim(typing.range);
    }
  }
  return sig;
}

ConceptSignature StructuralPreFilter::ComputeTargetSignature(
    ql::ConceptId d) const {
  const ql::TermFactory& f = sigma_.terms();
  ConceptSignature sig;
  sig.filterable = true;

  // Top-level conjuncts: x:D requires each one as a fact at the root
  // (D is either decomposed by D1 or composed by C1 — both directions
  // leave every conjunct's membership in F).
  std::vector<ConceptId> conjuncts = {d};
  while (!conjuncts.empty()) {
    ConceptId cur = conjuncts.back();
    conjuncts.pop_back();
    const ConceptNode& n = f.node(cur);
    switch (n.kind) {
      case ConceptKind::kAnd:
        conjuncts.push_back(n.lhs);
        conjuncts.push_back(n.rhs);
        break;
      case ConceptKind::kPrimitive:
        sig.prims.Set(n.sym);
        break;
      case ConceptKind::kExists:
      case ConceptKind::kAgree:
        // x:∃p (or ∃p≐ε) with p ≠ ε needs an edge labeled with p's
        // first attribute at the root, in some orientation.
        if (n.path != ql::kEmptyPath) {
          sig.attrs.Set(f.path(n.path)[0].attr.prim);
        }
        break;
      default:
        break;
    }
  }

  // Constants anywhere in D (top level or path filters): singleton
  // memberships in F only ever originate from C's own singletons, so
  // every constant D asks for must be mentioned in C.
  for (ConceptId sub : f.Subconcepts(d)) {
    const ConceptNode& n = f.node(sub);
    if (n.kind == ConceptKind::kSingleton) {
      sig.constants.Set(n.sym);
    } else if (n.kind == ConceptKind::kAll ||
               n.kind == ConceptKind::kAtMostOne) {
      sig.filterable = false;
    }
  }
  return sig;
}

PreFilterVerdict StructuralPreFilter::Check(ql::ConceptId c,
                                            ql::ConceptId d) const {
  if (c == ql::kInvalidConcept || d == ql::kInvalidConcept) {
    return PreFilterVerdict::kUnknown;
  }
  const ConceptSignature& qs = QuerySignature(c);
  const ConceptSignature& ts = TargetSignature(d);
  if (!qs.filterable || !ts.filterable) return PreFilterVerdict::kUnknown;
  // Clash guard: with two or more distinct constants in C the completion
  // could be Σ-unsatisfiable, which subsumes everything — abstain.
  if (qs.num_constants >= 2) return PreFilterVerdict::kUnknown;
  if (!ts.prims.SubsetOf(qs.prims)) return PreFilterVerdict::kReject;
  if (!ts.attrs.SubsetOf(qs.attrs)) return PreFilterVerdict::kReject;
  if (!ts.constants.SubsetOf(qs.constants)) return PreFilterVerdict::kReject;
  return PreFilterVerdict::kUnknown;
}

}  // namespace oodb::calculus
