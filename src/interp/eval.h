// Evaluation of SL/QL terms over finite interpretations (Table 1, column 3)
// and of FOL formulas (column 2). Property tests check that the two columns
// agree, which is the executable content of Table 1.
#ifndef OODB_INTERP_EVAL_H_
#define OODB_INTERP_EVAL_H_

#include <unordered_map>
#include <vector>

#include "interp/interpretation.h"
#include "ql/fol.h"
#include "ql/term.h"
#include "ql/term_factory.h"
#include "schema/schema.h"

namespace oodb::interp {

// p^I restricted to pairs starting at `d`: the set of elements reachable
// from d along path p. PathReach(ε, d) = {d}.
std::vector<int> PathReach(const Interpretation& interp,
                           const ql::TermFactory& f, ql::PathId p, int d);

// d ∈ C^I. Singletons of unassigned constants evaluate to the empty set.
bool InConceptEval(const Interpretation& interp, const ql::TermFactory& f,
                   ql::ConceptId c, int d);

// C^I as a sorted element list.
std::vector<int> ConceptEval(const Interpretation& interp,
                             const ql::TermFactory& f, ql::ConceptId c);

// Whether I satisfies A ⊑ D, i.e. A^I ⊆ D^I.
bool SatisfiesInclusion(const Interpretation& interp, const ql::TermFactory& f,
                        const schema::InclusionAxiom& axiom);

// Whether I satisfies P ⊑ A₁×A₂.
bool SatisfiesTyping(const Interpretation& interp,
                     const schema::TypingAxiom& axiom);

// Whether I is a Σ-interpretation (satisfies every axiom of Σ).
bool IsModelOf(const Interpretation& interp, const schema::Schema& sigma);

// --- FOL evaluation ------------------------------------------------------

// Variable assignment for FOL evaluation.
using Env = std::unordered_map<Symbol, int>;

// Evaluates a formula under `env`. Free variables must be bound in env;
// constants resolve through the interpretation (unassigned constants make
// their atoms false, matching InConceptEval's singleton convention).
bool EvalFormula(const Interpretation& interp, const ql::FormulaPtr& formula,
                 Env& env);

}  // namespace oodb::interp

#endif  // OODB_INTERP_EVAL_H_
