// Failover-aware client for a daemon fleet (docs/cluster.md §4).
//
// Routing: every request line names a session (except fleet-wide verbs
// like STATS with no argument, which go to node 0); the consistent-hash
// ring maps the session to its owner, and the client talks to the owner
// directly. On a transport error the client retries — but only for
// idempotent read verbs — with capped exponential backoff, rotating
// through the owner's replicas so reads keep answering while the owner
// is down. Mutations are never retried across nodes: they go to the
// owner and fail fast, because a duplicated DEFINE/LOAD is not safe to
// replay blindly.
#ifndef OODB_CLUSTER_CLUSTER_CLIENT_H_
#define OODB_CLUSTER_CLUSTER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/rng.h"
#include "base/status.h"
#include "cluster/membership.h"
#include "cluster/ring.h"
#include "server/client.h"

namespace oodb::cluster {

// Read verbs that are safe to resend after an ambiguous transport
// failure (and to serve from a replica): they mutate nothing.
bool IsIdempotentVerb(std::string_view verb);

// Capped exponential backoff with jitter. Delay for retry i is uniform
// in [(1 - jitter) * d, d] where d = min(base_ms << i, cap_ms): the full
// deterministic envelope is never exceeded, and the jitter keeps a
// thundering herd of clients from re-arriving in lockstep.
struct BackoffPolicy {
  uint64_t base_ms = 5;
  uint64_t cap_ms = 200;
  // Total tries per request, the first one included.
  size_t max_attempts = 6;
  double jitter = 0.5;

  // Delay before retry `retry_index` (0 = the first retry).
  uint64_t DelayMs(size_t retry_index, Rng& rng) const;
};

// Not thread-safe (same contract as server::Client): give each thread
// its own instance. Connections to nodes are dialed lazily, kept in
// binary mode, and redialed transparently after a failure.
class ClusterClient {
 public:
  struct RetryStats {
    uint64_t requests = 0;          // Call() invocations
    uint64_t retries = 0;           // extra attempts after a failure
    uint64_t busy_retries = 0;      // retries caused by BUSY
    uint64_t failovers = 0;         // reads answered by a non-owner
    uint64_t transport_errors = 0;  // connect/roundtrip transport faults
  };

  explicit ClusterClient(ClusterConfig config, BackoffPolicy backoff = {},
                         uint64_t seed = 0x0dd5eedULL);

  // Routes one request line to the owner of its session, retrying and
  // failing over per the class comment. Replies map exactly like
  // server::Client::Roundtrip.
  Result<std::string> Call(const std::string& line,
                           const std::string* payload = nullptr);

  // Sends one line to a specific node, no routing, no retries. For
  // diagnostics and benchmarks that must address a node directly.
  Result<std::string> CallAt(size_t node, const std::string& line,
                             const std::string* payload = nullptr);

  // ---- Typed wrappers mirroring server::Client ----
  Result<std::string> Load(const std::string& session,
                           const std::string& dl_source);
  Result<std::string> LoadState(const std::string& session,
                                const std::string& odb_source);
  Result<size_t> DefineView(const std::string& session,
                            const std::string& query_class);
  Result<std::string> Undefine(const std::string& session,
                               const std::string& query_class);
  Result<bool> Check(const std::string& session, const std::string& c,
                     const std::string& d);
  Result<std::vector<bool>> CheckBatch(
      const std::string& session,
      const std::vector<std::pair<std::string, std::string>>& pairs);
  Result<std::string> Classify(const std::string& session);
  Result<std::string> Stats(const std::string& session);
  // SHUTDOWN to every node that still answers; best-effort.
  void ShutdownAll();

  size_t OwnerOf(std::string_view session) const {
    return ring_.OwnerOf(session);
  }
  std::vector<size_t> ReplicasOf(std::string_view session) const {
    return ring_.ReplicasOf(session, config_.EffectiveReplicas());
  }
  const ClusterConfig& config() const { return config_; }
  const RetryStats& retry_stats() const { return stats_; }

 private:
  // The live connection to `node`, dialing if needed. Any failure here
  // is a transport fault by construction (no request was sent), however
  // the status is coded.
  Result<server::Client*> Conn(size_t node);
  // Forgets the connection to `node` (next Conn redials).
  void Drop(size_t node);

  const ClusterConfig config_;
  const Ring ring_;
  const BackoffPolicy backoff_;
  Rng rng_;
  std::vector<std::unique_ptr<server::Client>> conns_;
  RetryStats stats_;
};

}  // namespace oodb::cluster

#endif  // OODB_CLUSTER_CLUSTER_CLIENT_H_
