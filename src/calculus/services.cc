#include "calculus/services.h"

#include <algorithm>

#include "base/strings.h"
#include "ql/print.h"

namespace oodb::calculus {

namespace {

// Flattens an ⊓-tree into its conjunct list.
void Conjuncts(const ql::TermFactory& f, ql::ConceptId c,
               std::vector<ql::ConceptId>* out) {
  const ql::ConceptNode& n = f.node(c);
  if (n.kind == ql::ConceptKind::kAnd) {
    Conjuncts(f, n.lhs, out);
    Conjuncts(f, n.rhs, out);
  } else {
    out->push_back(c);
  }
}

}  // namespace

Result<ql::ConceptId> MinimizeConcept(const SubsumptionChecker& checker,
                                      ql::TermFactory* terms,
                                      ql::ConceptId c) {
  std::vector<ql::ConceptId> conjuncts;
  Conjuncts(*terms, c, &conjuncts);

  // Phase 1: drop conjuncts implied by the rest.
  bool changed = true;
  while (changed && conjuncts.size() > 1) {
    changed = false;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      std::vector<ql::ConceptId> rest;
      for (size_t j = 0; j < conjuncts.size(); ++j) {
        if (j != i) rest.push_back(conjuncts[j]);
      }
      ql::ConceptId candidate = terms->AndAll(rest);
      OODB_ASSIGN_OR_RETURN(bool implied,
                            checker.Subsumes(candidate, conjuncts[i]));
      if (implied) {
        conjuncts = std::move(rest);
        changed = true;
        break;
      }
    }
  }

  // Phase 2: weaken path filters to ⊤ where the rest of the concept
  // already implies them (the weakened whole must subsume-back).
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    const ql::ConceptNode n = terms->node(conjuncts[i]);
    if (n.kind != ql::ConceptKind::kExists &&
        n.kind != ql::ConceptKind::kAgree) {
      continue;
    }
    std::vector<ql::Restriction> steps = terms->path(n.path);
    bool any = false;
    for (size_t k = 0; k < steps.size(); ++k) {
      if (steps[k].filter == terms->Top()) continue;
      std::vector<ql::Restriction> weakened_steps = steps;
      weakened_steps[k].filter = terms->Top();
      ql::PathId weakened_path = terms->MakePath(weakened_steps);
      ql::ConceptId weakened_conjunct =
          n.kind == ql::ConceptKind::kExists ? terms->Exists(weakened_path)
                                             : terms->Agree(weakened_path);
      std::vector<ql::ConceptId> candidate_list = conjuncts;
      candidate_list[i] = weakened_conjunct;
      ql::ConceptId candidate = terms->AndAll(candidate_list);
      // Weakening gives c ⊑ candidate for free; equality needs the
      // converse.
      OODB_ASSIGN_OR_RETURN(bool back, checker.Subsumes(candidate, c));
      if (back) {
        steps = std::move(weakened_steps);
        any = true;
      }
    }
    if (any) {
      ql::PathId path = terms->MakePath(std::move(steps));
      conjuncts[i] = n.kind == ql::ConceptKind::kExists
                         ? terms->Exists(path)
                         : terms->Agree(path);
    }
  }

  ql::ConceptId result = terms->AndAll(conjuncts);
  // Safety net: the result must be Σ-equivalent to the input.
  OODB_ASSIGN_OR_RETURN(bool equivalent, checker.Equivalent(result, c));
  if (!equivalent) return c;
  return result;
}

Result<ql::ConceptId> CommonSubsumer(const SubsumptionChecker& checker,
                                     ql::TermFactory* terms,
                                     const std::vector<ql::ConceptId>& cs) {
  if (cs.empty()) return terms->Top();
  // Candidate conjuncts: every top-level conjunct of every input.
  std::vector<ql::ConceptId> candidates;
  for (ql::ConceptId c : cs) Conjuncts(*terms, c, &candidates);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  std::vector<ql::ConceptId> kept;
  for (ql::ConceptId candidate : candidates) {
    bool common = true;
    for (ql::ConceptId c : cs) {
      OODB_ASSIGN_OR_RETURN(bool sub, checker.Subsumes(c, candidate));
      if (!sub) {
        common = false;
        break;
      }
    }
    if (common) kept.push_back(candidate);
  }
  return MinimizeConcept(checker, terms, terms->AndAll(kept));
}

Result<std::optional<ql::ConceptId>> ResidualFilter(
    const SubsumptionChecker& checker, ql::TermFactory* terms,
    ql::ConceptId q, ql::ConceptId v) {
  OODB_ASSIGN_OR_RETURN(bool subsumed, checker.Subsumes(q, v));
  if (!subsumed) return std::optional<ql::ConceptId>();

  std::vector<ql::ConceptId> residual;
  Conjuncts(*terms, q, &residual);
  // Greedy deletion: Q ⊑ V and Q ⊑ ⋀R' give Q ⊑ V ⊓ R' for free, so only
  // the converse V ⊓ R' ⊑ Q needs checking.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < residual.size(); ++i) {
      std::vector<ql::ConceptId> rest;
      for (size_t j = 0; j < residual.size(); ++j) {
        if (j != i) rest.push_back(residual[j]);
      }
      ql::ConceptId candidate = terms->And(v, terms->AndAll(rest));
      OODB_ASSIGN_OR_RETURN(bool exact, checker.Subsumes(candidate, q));
      if (exact) {
        residual = std::move(rest);
        changed = true;
        break;
      }
    }
  }
  return std::optional<ql::ConceptId>(terms->AndAll(residual));
}

Status Classifier::Add(Symbol name, ql::ConceptId concept_id) {
  if (nodes_.count(name) > 0) {
    return AlreadyExistsError("concept name already classified");
  }
  Node node;
  node.concept_id = concept_id;
  nodes_.emplace(name, std::move(node));
  names_.push_back(name);
  classified_ = false;
  return Status::Ok();
}

Status Classifier::Classify() {
  stats_ = ClassifyStats{};
  stats_.concepts = names_.size();
  stats_.pairwise_checks =
      names_.size() < 2 ? 0 : names_.size() * (names_.size() - 1);
  for (auto& [name, node] : nodes_) {
    node.parents.clear();
    node.children.clear();
    node.equivalents.clear();
  }
  OODB_RETURN_IF_ERROR(mode_ == Mode::kPairwise ? ClassifyPairwise()
                                                : ClassifyEnhanced());
  stats_.checks_avoided = stats_.pairwise_checks > stats_.checks_performed
                              ? stats_.pairwise_checks - stats_.checks_performed
                              : 0;
  classified_ = true;
  return Status::Ok();
}

Status Classifier::ClassifyPairwise() {
  const size_t n = names_.size();
  // Full subsumption matrix (n² checks, each polynomial).
  std::vector<std::vector<bool>> below(n, std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) {
        below[i][j] = true;
        continue;
      }
      ++stats_.checks_performed;
      OODB_ASSIGN_OR_RETURN(
          bool sub, checker_.Subsumes(nodes_.at(names_[i]).concept_id,
                                      nodes_.at(names_[j]).concept_id));
      below[i][j] = sub;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    Node& node = nodes_.at(names_[i]);
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (below[i][j] && below[j][i]) {
        node.equivalents.push_back(names_[j]);
        continue;
      }
      if (!below[i][j]) continue;
      // j is a strict subsumer of i; direct iff no strict k between.
      bool direct = true;
      for (size_t k = 0; k < n && direct; ++k) {
        if (k == i || k == j) continue;
        if (below[i][k] && !below[k][i] && below[k][j] && !below[j][k]) {
          direct = false;
        }
      }
      if (direct) {
        node.parents.push_back(names_[j]);
        nodes_.at(names_[j]).children.push_back(names_[i]);
      }
    }
  }
  return Status::Ok();
}

Status Classifier::ClassifyEnhanced() {
  // Incremental insertion into a DAG of Σ-equivalence classes. The DAG
  // edges are always the transitive reduction of the strict subsumption
  // order on the classes inserted so far, so reachability answers "is
  // this pair already decided?" for free — the source of the avoidance.
  struct Class {
    std::vector<Symbol> members;  // in insertion order
    ql::ConceptId rep = ql::kInvalidConcept;
    std::vector<size_t> parents;   // direct super-classes
    std::vector<size_t> children;  // direct sub-classes
  };
  enum Verdict : char { kUndecided = 0, kYes, kNo };

  std::vector<Class> classes;
  std::unordered_map<Symbol, size_t> class_of;

  for (Symbol name : names_) {
    const ql::ConceptId c = nodes_.at(name).concept_id;
    const size_t m = classes.size();

    // Topological order of the current DAG, parents before children.
    std::vector<size_t> topo;
    topo.reserve(m);
    {
      std::vector<char> done(m, 0);
      std::vector<size_t> stack;
      for (size_t start = 0; start < m; ++start) {
        if (done[start]) continue;
        stack.push_back(start);
        while (!stack.empty()) {
          size_t y = stack.back();
          bool ready = true;
          for (size_t p : classes[y].parents) {
            if (!done[p]) {
              stack.push_back(p);
              ready = false;
            }
          }
          if (!ready) continue;
          stack.pop_back();
          if (done[y]) continue;
          done[y] = 1;
          topo.push_back(y);
        }
      }
    }

    // Top search: which classes subsume c? The subsumer set is upward
    // closed (c ⊑ y and y ⊑ p give c ⊑ p), so once a class is out, every
    // class below it is out without a check.
    std::vector<char> up(m, kUndecided);
    for (size_t y : topo) {
      bool pruned = false;
      for (size_t p : classes[y].parents) {
        if (up[p] == kNo) {
          pruned = true;
          break;
        }
      }
      if (pruned) {
        up[y] = kNo;
        continue;
      }
      ++stats_.checks_performed;
      OODB_ASSIGN_OR_RETURN(bool sub, checker_.Subsumes(c, classes[y].rep));
      up[y] = sub ? kYes : kNo;
    }
    // Direct parents = minimal subsumers = subsumer classes none of
    // whose DAG children also subsume.
    std::vector<size_t> direct_parents;
    for (size_t y = 0; y < m; ++y) {
      if (up[y] != kYes) continue;
      bool minimal = true;
      for (size_t ch : classes[y].children) {
        if (up[ch] == kYes) {
          minimal = false;
          break;
        }
      }
      if (minimal) direct_parents.push_back(y);
    }

    // Bottom search: which classes does c subsume? Any subsumee sits
    // (weakly) below EVERY direct parent, so only the intersection of
    // their down-sets is live; within it, a class whose child already
    // failed fails too (ch ⊑ y ⊑ c would force ch ⊑ c).
    std::vector<char> candidate(m, direct_parents.empty() ? char(1) : char(0));
    if (!direct_parents.empty()) {
      std::vector<char> reach(m, 0);
      std::vector<size_t> stack;
      for (size_t p : direct_parents) {
        std::fill(reach.begin(), reach.end(), 0);
        reach[p] = 1;
        stack.push_back(p);
        while (!stack.empty()) {
          size_t y = stack.back();
          stack.pop_back();
          for (size_t ch : classes[y].children) {
            if (!reach[ch]) {
              reach[ch] = 1;
              stack.push_back(ch);
            }
          }
        }
        for (size_t y = 0; y < m; ++y) {
          if (p == direct_parents.front()) {
            candidate[y] = reach[y];
          } else {
            candidate[y] = candidate[y] && reach[y];
          }
        }
      }
    }
    std::vector<char> down(m, kNo);
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      size_t y = *it;
      if (!candidate[y]) continue;  // y ⋢ some parent of c ⟹ y ⋢ c
      bool pruned = false;
      for (size_t ch : classes[y].children) {
        if (down[ch] == kNo) {
          pruned = true;
          break;
        }
      }
      if (pruned) continue;
      ++stats_.checks_performed;
      OODB_ASSIGN_OR_RETURN(bool sub, checker_.Subsumes(classes[y].rep, c));
      down[y] = sub ? kYes : kNo;
    }

    // Equivalence: a class both above and below c absorbs the name
    // (there can be at most one — distinct classes are never mutually
    // subsuming).
    size_t equiv = m;
    for (size_t y = 0; y < m; ++y) {
      if (up[y] == kYes && down[y] == kYes) {
        equiv = y;
        break;
      }
    }
    if (equiv != m) {
      classes[equiv].members.push_back(name);
      class_of.emplace(name, equiv);
      continue;
    }

    // New class: link to the direct parents and the maximal subsumees,
    // then drop the parent↔child edges the new class now mediates
    // (keeping the DAG transitively reduced).
    std::vector<size_t> direct_children;
    for (size_t y = 0; y < m; ++y) {
      if (down[y] != kYes) continue;
      bool maximal = true;
      for (size_t p : classes[y].parents) {
        if (down[p] == kYes) {
          maximal = false;
          break;
        }
      }
      if (maximal) direct_children.push_back(y);
    }
    Class fresh;
    fresh.members.push_back(name);
    fresh.rep = c;
    fresh.parents = direct_parents;
    fresh.children = direct_children;
    classes.push_back(std::move(fresh));
    class_of.emplace(name, m);
    auto erase_value = [](std::vector<size_t>* v, size_t value) {
      v->erase(std::remove(v->begin(), v->end(), value), v->end());
    };
    for (size_t ch : direct_children) {
      for (size_t p : direct_parents) {
        erase_value(&classes[ch].parents, p);
        erase_value(&classes[p].children, ch);
      }
      classes[ch].parents.push_back(m);
    }
    for (size_t p : direct_parents) classes[p].children.push_back(m);
  }

  // Expand the class DAG into the per-name lists of the pairwise
  // rendering: every member of every adjacent class, in name-insertion
  // order (which is exactly the pairwise loop order).
  std::unordered_map<Symbol, size_t> name_index;
  for (size_t i = 0; i < names_.size(); ++i) name_index.emplace(names_[i], i);
  auto by_insertion = [&](std::vector<Symbol>* v) {
    std::sort(v->begin(), v->end(), [&](Symbol a, Symbol b) {
      return name_index.at(a) < name_index.at(b);
    });
  };
  for (Symbol name : names_) {
    Node& node = nodes_.at(name);
    const Class& k = classes[class_of.at(name)];
    for (Symbol other : k.members) {
      if (other != name) node.equivalents.push_back(other);
    }
    for (size_t p : k.parents) {
      for (Symbol other : classes[p].members) node.parents.push_back(other);
    }
    for (size_t ch : k.children) {
      for (Symbol other : classes[ch].members) node.children.push_back(other);
    }
    by_insertion(&node.equivalents);
    by_insertion(&node.parents);
    by_insertion(&node.children);
  }
  return Status::Ok();
}

std::vector<Symbol> Classifier::Parents(Symbol name) const {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? std::vector<Symbol>{} : it->second.parents;
}

std::vector<Symbol> Classifier::Children(Symbol name) const {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? std::vector<Symbol>{} : it->second.children;
}

std::vector<Symbol> Classifier::Equivalents(Symbol name) const {
  auto it = nodes_.find(name);
  return it == nodes_.end() ? std::vector<Symbol>{} : it->second.equivalents;
}

Result<std::vector<Symbol>> Classifier::SubsumersOf(
    ql::ConceptId concept_id) const {
  // Collect subsumers, then order children-before-parents so callers can
  // take the first (most specific) hit.
  std::vector<Symbol> subsumers;
  for (Symbol name : names_) {
    OODB_ASSIGN_OR_RETURN(
        bool sub, checker_.Subsumes(concept_id, nodes_.at(name).concept_id));
    if (sub) subsumers.push_back(name);
  }
  std::vector<Symbol> ordered;
  std::unordered_map<Symbol, bool> placed;
  // Repeatedly emit subsumers all of whose (subsumer-)children are placed.
  while (ordered.size() < subsumers.size()) {
    bool progress = false;
    for (Symbol name : subsumers) {
      if (placed[name]) continue;
      bool ready = true;
      for (Symbol child : nodes_.at(name).children) {
        if (std::find(subsumers.begin(), subsumers.end(), child) !=
                subsumers.end() &&
            !placed[child]) {
          ready = false;
          break;
        }
      }
      if (ready) {
        ordered.push_back(name);
        placed[name] = true;
        progress = true;
      }
    }
    if (!progress) {  // equivalence cycles: emit the rest in input order
      for (Symbol name : subsumers) {
        if (!placed[name]) {
          ordered.push_back(name);
          placed[name] = true;
        }
      }
    }
  }
  return ordered;
}

std::string Classifier::ToString(const SymbolTable& symbols) const {
  std::string out;
  for (Symbol name : names_) {
    const Node& node = nodes_.at(name);
    out += StrCat(symbols.Name(name), "\n");
    if (!node.equivalents.empty()) {
      out += StrCat("  ≡ ", StrJoinMapped(node.equivalents, ", ",
                                          [&](Symbol s) {
                                            return symbols.Name(s);
                                          }),
                    "\n");
    }
    out += StrCat("  parents: ",
                  node.parents.empty()
                      ? "⊤"
                      : StrJoinMapped(node.parents, ", ",
                                      [&](Symbol s) {
                                        return symbols.Name(s);
                                      }),
                  "\n");
  }
  return out;
}

}  // namespace oodb::calculus
