// Extended concept language for the complexity laboratory of Sect. 4.4:
// the constructs whose addition to SL/QL makes subsumption intractable
// (qualified existentials, value restrictions in queries, disjunction,
// atomic complements). Kept separate from the core ql:: terms so the core
// language stays exactly the tractable fragment.
#ifndef OODB_EXT_XCONCEPT_H_
#define OODB_EXT_XCONCEPT_H_

#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "base/symbol.h"
#include "ql/term.h"
#include "ql/term_factory.h"

namespace oodb::ext {

struct XConcept;
using XConceptPtr = std::shared_ptr<const XConcept>;

struct XConcept {
  enum class Kind : uint8_t {
    kTop,
    kPrim,       // A
    kSingleton,  // {a}
    kNotPrim,    // ¬A (atomic complement; Prop. 4.13 uses A\A' = A ⊓ ¬A')
    kAnd,
    kOr,         // disjunction (Prop. 4.12)
    kExists,     // ∃R.C (qualified existential; Prop. 4.10(1)/4.11)
    kAll,        // ∀R.C (universal quantification in queries; Prop. 4.11)
  };
  Kind kind = Kind::kTop;
  Symbol sym;                       // kPrim / kSingleton / kNotPrim
  ql::Attr attr;                    // kExists / kAll
  std::vector<XConceptPtr> children;
};

XConceptPtr XTop();
XConceptPtr XPrim(Symbol a);
XConceptPtr XSingleton(Symbol a);
XConceptPtr XNotPrim(Symbol a);
XConceptPtr XAnd(std::vector<XConceptPtr> cs);
XConceptPtr XOr(std::vector<XConceptPtr> cs);
XConceptPtr XExists(ql::Attr attr, XConceptPtr filler);
XConceptPtr XAll(ql::Attr attr, XConceptPtr filler);

// Number of nodes.
size_t XSize(const XConceptPtr& c);

std::string XToString(const SymbolTable& symbols, const XConceptPtr& c);

// Rewrites an ⊔-bearing concept into disjunctive normal form over core QL
// concepts: C ≡ C₁ ⊔ … ⊔ Cₖ with every Cᵢ a plain QL concept. Fails with
// kUnimplemented if the concept contains ¬A or ∀R.C (those never map into
// QL). The expansion is worst-case exponential — which is the point of
// experiment E9. `max_disjuncts` caps the blowup (kResourceExhausted).
Result<std::vector<ql::ConceptId>> DnfToQl(const XConceptPtr& c,
                                           ql::TermFactory* terms,
                                           size_t max_disjuncts = 1u << 20);

}  // namespace oodb::ext

#endif  // OODB_EXT_XCONCEPT_H_
