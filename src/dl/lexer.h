// Tokenizer for DL source text. All words lex as identifiers; keywords are
// contextual (so `name`, `domain` or `single` remain usable as attribute
// and class names). `//` starts a line comment.
#ifndef OODB_DL_LEXER_H_
#define OODB_DL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace oodb::dl {

enum class TokenKind : uint8_t {
  kIdent,
  kComma,     // ,
  kColon,     // :
  kDot,       // .
  kLParen,    // (
  kRParen,    // )
  kEquals,    // =
  kSlash,     // /
  kLBrace,    // {
  kRBrace,    // }
  kQuestion,  // ?
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  int line = 0;
  int column = 0;
};

// Tokenizes `source`. Fails with kInvalidArgument on an illegal character.
// The result always ends with a kEof token.
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace oodb::dl

#endif  // OODB_DL_LEXER_H_
