// oodbsub — command-line front end to the library.
//
//   oodbsub translate <schema.dl>
//       print SL axioms, QL concepts of all query classes, FOL renderings
//   oodbsub check <schema.dl> <query> <view>
//       decide Σ-subsumption and explain the verdict
//   oodbsub classify <schema.dl>
//       classify all query classes into a subsumption hierarchy
//   oodbsub minimize <schema.dl> <query>
//       print the Σ-minimized concept of a query class
//   oodbsub query <schema.dl> <state.odb> <query>
//       evaluate a query class over a database state
//   oodbsub optimize <schema.dl> <state.odb> <query> <view...>
//       materialize the views and answer the query through the optimizer
//   oodbsub serve [--port=N] [--threads=N] [--max-pending=N] [--deadline-ms=N]
//           [--metrics-threshold-ms=N]
//       run the optimizer daemon (docs/server.md, docs/observability.md)
//   oodbsub rpc <host:port> <VERB> [args...]
//       send one framed request to a running daemon
//   oodbsub stats <host:port> [session]
//       human-readable snapshot of a running daemon's stats + metrics
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/status.h"
#include "base/strings.h"
#include "cluster/cluster_client.h"
#include "cluster/membership.h"
#include "calculus/explain.h"
#include "calculus/services.h"
#include "calculus/subsumption.h"
#include "db/database.h"
#include "db/evaluator.h"
#include "db/deduction.h"
#include "db/instance.h"
#include "dl/analyzer.h"
#include "dl/printer.h"
#include "dl/translate.h"
#include "obs/exposition.h"
#include "ql/fol.h"
#include "ql/print.h"
#include "schema/schema.h"
#include "server/client.h"
#include "server/server.h"
#include "service/parallel_classifier.h"
#include "views/views.h"

namespace {

using namespace oodb;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError(StrCat("cannot open '", path, "'"));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Everything a subcommand needs: the parsed model, Σ and a translator.
struct Session {
  SymbolTable symbols;
  std::unique_ptr<ql::TermFactory> terms;
  std::unique_ptr<schema::Schema> sigma;
  std::unique_ptr<dl::Model> model;
  std::unique_ptr<dl::Translator> translator;

  Status Open(const std::string& schema_path) {
    OODB_ASSIGN_OR_RETURN(std::string source, ReadFile(schema_path));
    terms = std::make_unique<ql::TermFactory>(&symbols);
    sigma = std::make_unique<schema::Schema>(terms.get());
    OODB_ASSIGN_OR_RETURN(dl::Model parsed,
                          dl::ParseAndAnalyze(source, &symbols));
    model = std::make_unique<dl::Model>(std::move(parsed));
    for (const std::string& warning : model->warnings()) {
      std::fprintf(stderr, "note: %s\n", warning.c_str());
    }
    translator = std::make_unique<dl::Translator>(*model, terms.get());
    return translator->BuildSchema(sigma.get());
  }

  Result<ql::ConceptId> Concept(const std::string& name) {
    Symbol s = symbols.Find(name);
    if (!s.valid() || model->FindClass(s) == nullptr) {
      return NotFoundError(StrCat("no class named '", name, "'"));
    }
    return translator->QueryConcept(s);
  }
};

int CmdTranslate(Session& session) {
  std::printf("schema axioms:\n");
  for (const auto& ax : session.sigma->inclusions()) {
    std::printf("  %s ⊑ %s\n", session.symbols.Name(ax.lhs).c_str(),
                ql::ConceptToString(*session.terms, ax.rhs).c_str());
  }
  for (const auto& ax : session.sigma->typings()) {
    std::printf("  %s ⊑ %s × %s\n", session.symbols.Name(ax.attr).c_str(),
                session.symbols.Name(ax.domain).c_str(),
                session.symbols.Name(ax.range).c_str());
  }
  std::printf("\nquery concepts:\n");
  for (const dl::ClassDef& def : session.model->classes()) {
    if (!def.is_query) continue;
    auto concept_id = session.translator->QueryConcept(def.name);
    if (!concept_id.ok()) return Fail(concept_id.status());
    std::printf("  %s = %s\n", session.symbols.Name(def.name).c_str(),
                ql::ConceptToString(*session.terms, *concept_id).c_str());
    auto fol = session.translator->QueryClassToFol(def.name);
    if (fol.ok()) {
      std::printf("    ⇔ %s\n",
                  ql::FormulaToString(*session.terms, *fol).c_str());
    }
  }
  return 0;
}

// One-line check-avoidance summary (behind --stats everywhere).
void PrintPerfStats(const calculus::CheckerPerfStats& perf) {
  std::printf(
      "stats: engine runs %llu, pre-filter rejections %llu/%llu, "
      "memo hits %llu misses %llu, pool reuses %llu/%llu\n",
      static_cast<unsigned long long>(perf.engine_runs),
      static_cast<unsigned long long>(perf.prefilter_rejections),
      static_cast<unsigned long long>(perf.prefilter_checks),
      static_cast<unsigned long long>(perf.cache.hits),
      static_cast<unsigned long long>(perf.cache.misses),
      static_cast<unsigned long long>(perf.pool_reuses),
      static_cast<unsigned long long>(perf.pool_acquires));
}

int CmdCheck(Session& session, const std::string& query,
             const std::string& view, bool stats) {
  auto c = session.Concept(query);
  if (!c.ok()) return Fail(c.status());
  auto d = session.Concept(view);
  if (!d.ok()) return Fail(d.status());
  auto explanation =
      calculus::ExplainSubsumption(*session.sigma, *c, *d);
  if (!explanation.ok()) return Fail(explanation.status());
  std::printf("%s %s %s\n\n%s", query.c_str(),
              explanation->subsumed ? "⊑_Σ" : "⋢_Σ", view.c_str(),
              explanation->text.c_str());
  if (stats) {
    // Run the same pair through the check-avoidance fast path (the
    // explanation above is the deliberately unfiltered oracle).
    calculus::SubsumptionChecker checker(*session.sigma);
    auto verdict = checker.Subsumes(*c, *d);
    if (!verdict.ok()) return Fail(verdict.status());
    PrintPerfStats(checker.perf_stats());
    // Full completion once more for the rule-application profile and the
    // measured run duration (RunStats::duration).
    auto detailed = checker.SubsumesDetailed(*c, *d);
    if (!detailed.ok()) return Fail(detailed.status());
    const calculus::RunStats& rs = detailed->stats;
    std::string rules;
    for (size_t i = 0; i < rs.rule_applications.size(); ++i) {
      const uint64_t count = rs.rule_applications[i];
      if (count == 0) continue;
      rules = StrCat(rules, rules.empty() ? "" : " ",
                     calculus::RuleName(static_cast<calculus::Rule>(i)), "=",
                     count);
    }
    std::printf("rules: %s (total %llu)\n",
                rules.empty() ? "none" : rules.c_str(),
                static_cast<unsigned long long>(rs.TotalApplications()));
    std::printf(
        "engine: %.3f ms (%zu individuals, %zu variables, %zu facts, "
        "%zu goals, %zu rounds)\n",
        static_cast<double>(rs.duration.count()) / 1e6, rs.individuals,
        rs.variables, rs.facts, rs.goals, rs.rounds);
  }
  return explanation->subsumed ? 0 : 2;
}

int CmdClassify(Session& session, size_t threads, bool stats) {
  // Virtual classes are "integrated into the existing class hierarchy by
  // a simple subsumption check" (paper Sect. 5, [AB91]/[SLT91]): classify
  // query classes and schema classes together.
  std::vector<std::pair<Symbol, ql::ConceptId>> concepts;
  for (const dl::ClassDef& def : session.model->classes()) {
    if (def.name == session.model->object_class) continue;
    auto concept_id = def.is_query
                          ? session.translator->QueryConcept(def.name)
                          : Result<ql::ConceptId>(
                                session.terms->Primitive(def.name));
    if (!concept_id.ok()) return Fail(concept_id.status());
    concepts.emplace_back(def.name, *concept_id);
  }

  // With --threads=N, precompute the full pairwise verdict matrix on the
  // service's worker pool; the classifier below then answers every one of
  // its checks from the shared sharded memo cache. Output is identical to
  // the single-threaded run by construction (and pinned by tests).
  service::ParallelClassifierOptions options;
  options.num_threads = threads;
  options.use_batch = false;  // per-pair mode fills the verdict cache
  service::ParallelClassifier parallel(*session.sigma, options);
  if (threads > 1) {
    std::vector<ql::ConceptId> ids;
    ids.reserve(concepts.size());
    for (const auto& [name, id] : concepts) ids.push_back(id);
    service::ClassificationReport report = parallel.ClassifyBatch(ids, ids);
    std::fprintf(stderr,
                 "note: warmed %zu x %zu verdicts on %zu threads in %.1f ms "
                 "(%llu cache insertions)\n",
                 ids.size(), ids.size(), report.threads_used,
                 static_cast<double>(report.wall.count()) / 1e6,
                 static_cast<unsigned long long>(report.cache.insertions));
  }

  calculus::Classifier classifier(parallel.checker());
  for (const auto& [name, id] : concepts) {
    if (auto s = classifier.Add(name, id); !s.ok()) return Fail(s);
  }
  if (auto s = classifier.Classify(); !s.ok()) return Fail(s);
  std::printf("%s", classifier.ToString(session.symbols).c_str());
  if (stats) {
    const calculus::Classifier::ClassifyStats& cs =
        classifier.classify_stats();
    std::printf("stats: %zu concepts, %zu/%zu checks issued (%zu avoided "
                "by traversal)\n",
                cs.concepts, cs.checks_performed, cs.pairwise_checks,
                cs.checks_avoided);
    PrintPerfStats(parallel.checker().perf_stats());
  }
  return 0;
}

int CmdMinimize(Session& session, const std::string& query) {
  auto c = session.Concept(query);
  if (!c.ok()) return Fail(c.status());
  calculus::SubsumptionChecker checker(*session.sigma);
  auto minimized =
      calculus::MinimizeConcept(checker, session.terms.get(), *c);
  if (!minimized.ok()) return Fail(minimized.status());
  std::printf("original : %s\n",
              ql::ConceptToString(*session.terms, *c).c_str());
  std::printf("minimized: %s\n",
              ql::ConceptToString(*session.terms, *minimized).c_str());
  return 0;
}

int CmdQuery(Session& session, const std::string& state_path,
             const std::string& query) {
  auto state = ReadFile(state_path);
  if (!state.ok()) return Fail(state.status());
  db::Database database(*session.model, &session.symbols);
  auto loaded = db::LoadInstance(*state, &database);
  if (!loaded.ok()) return Fail(loaded.status());
  for (const std::string& violation : database.CheckLegalState()) {
    std::fprintf(stderr, "warning: illegal state: %s\n", violation.c_str());
  }
  db::QueryEvaluator evaluator(database);
  db::EvalStats stats;
  auto answers = evaluator.Evaluate(session.symbols.Find(query), &stats);
  if (!answers.ok()) return Fail(answers.status());
  std::printf("%s over %zu objects (%zu candidates examined):\n",
              query.c_str(), database.num_objects(),
              stats.candidates_examined);
  for (db::ObjectId o : *answers) {
    std::printf("  %s\n",
                session.symbols.Name(database.ObjectName(o)).c_str());
  }
  return 0;
}

int CmdOptimize(Session& session, const std::string& state_path,
                const std::string& query,
                const std::vector<std::string>& views) {
  auto state = ReadFile(state_path);
  if (!state.ok()) return Fail(state.status());
  db::Database database(*session.model, &session.symbols);
  auto loaded = db::LoadInstance(*state, &database);
  if (!loaded.ok()) return Fail(loaded.status());

  views::ViewCatalog catalog(&database, session.translator.get());
  for (const std::string& view : views) {
    if (auto s = catalog.DefineView(session.symbols.Find(view)); !s.ok()) {
      return Fail(s);
    }
    std::printf("materialized %s (%zu answers)\n", view.c_str(),
                catalog.Find(session.symbols.Find(view))->extent.size());
  }
  views::Optimizer optimizer(&database, &catalog, *session.sigma,
                             session.translator.get());
  views::QueryPlan plan;
  db::EvalStats stats;
  auto answers =
      optimizer.Execute(session.symbols.Find(query), &plan, &stats);
  if (!answers.ok()) return Fail(answers.status());
  std::printf("plan: %s (%zu subsumption checks)\n",
              plan.explanation.c_str(), plan.subsumption_checks);
  std::printf("%s (%zu candidates examined):\n", query.c_str(),
              stats.candidates_examined);
  for (db::ObjectId o : *answers) {
    std::printf("  %s\n",
                session.symbols.Name(database.ObjectName(o)).c_str());
  }
  return 0;
}

int CmdPrint(Session& session) {
  std::printf("%s",
              dl::ModelToSource(*session.model, session.symbols).c_str());
  return 0;
}

int CmdState(Session& session, const std::string& state_path, bool deduce) {
  auto state = ReadFile(state_path);
  if (!state.ok()) return Fail(state.status());
  db::Database database(*session.model, &session.symbols);
  auto loaded = db::LoadInstance(*state, &database);
  if (!loaded.ok()) return Fail(loaded.status());
  std::fprintf(stderr, "loaded %zu objects, %zu memberships, %zu triples\n",
               loaded->objects, loaded->memberships, loaded->attributes);
  if (deduce) {
    auto stats = db::DeductiveClosure(&database);
    if (!stats.ok()) return Fail(stats.status());
    std::fprintf(stderr, "deduced %zu memberships in %zu rounds\n",
                 stats->derived_memberships, stats->rounds);
  }
  auto violations = database.CheckLegalState();
  for (const std::string& violation : violations) {
    std::fprintf(stderr, "illegal: %s\n", violation.c_str());
  }
  std::fprintf(stderr, "state is %s\n",
               violations.empty() ? "legal" : "ILLEGAL");
  std::printf("%s", db::DumpInstance(database).c_str());
  return violations.empty() ? 0 : 3;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  oodbsub translate <schema.dl>\n"
      "  oodbsub print <schema.dl>\n"
      "  oodbsub check <schema.dl> <query> <view> [--stats]\n"
      "  oodbsub classify <schema.dl> [--threads=N] [--stats]\n"
      "  oodbsub minimize <schema.dl> <query>\n"
      "  oodbsub query <schema.dl> <state.odb> <query>\n"
      "  oodbsub optimize <schema.dl> <state.odb> <query> <view...>\n"
      "  oodbsub state <schema.dl> <state.odb> [--deduce]\n"
      "  oodbsub serve [--port=N] [--threads=N] [--max-pending=N]"
      " [--deadline-ms=N]\n"
      "                [--metrics-threshold-ms=N]"
      " [--cluster=host:port,... --replicas=N]\n"
      "  oodbsub rpc [--binary] <host:port> <VERB> [args...]   (LOAD/STATE"
      " take a file path)\n"
      "  oodbsub rpc --cluster=host:port,... [--replicas=N] <VERB> [args...]\n"
      "      route via the failover-aware cluster client; the OWNER"
      " <session>\n"
      "      meta-verb prints the session's owner and replicas without"
      " a request\n"
      "  oodbsub stats <host:port> [session] [--json]\n"
      "  oodbsub stats --cluster=host:port,... [--json]\n"
      "      fan METRICS+HEALTH out to every node; render per-node health\n"
      "      and a fleet-total snapshot (--json: one JSON line per sample)\n"
      "exit codes: 0 ok, 1 error (diagnostics on stderr), 2 not subsumed,\n"
      "            3 illegal state, 4 server busy, 64 usage\n");
  return 64;
}

int CmdServe(const std::vector<std::string>& args) {
  server::ServerOptions options;
  std::string cluster_spec;
  size_t replicas = 1;
  for (const std::string& arg : args) {
    const char* value = nullptr;
    if (arg.rfind("--port=", 0) == 0) {
      value = arg.c_str() + 7;
      options.port = static_cast<uint16_t>(std::strtoul(value, nullptr, 10));
    } else if (arg.rfind("--threads=", 0) == 0) {
      value = arg.c_str() + 10;
      options.num_threads = std::strtoul(value, nullptr, 10);
    } else if (arg.rfind("--max-pending=", 0) == 0) {
      value = arg.c_str() + 14;
      options.max_pending = std::strtoul(value, nullptr, 10);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      value = arg.c_str() + 14;
      options.deadline_ms = std::strtol(value, nullptr, 10);
    } else if (arg.rfind("--metrics-threshold-ms=", 0) == 0) {
      // Slow-query log threshold: 0 logs everything, negative disables
      // request tracing.
      value = arg.c_str() + 23;
      options.slow_threshold_ms = std::strtol(value, nullptr, 10);
    } else if (arg.rfind("--cluster=", 0) == 0) {
      value = arg.c_str() + 10;
      cluster_spec = value;
    } else if (arg.rfind("--replicas=", 0) == 0) {
      value = arg.c_str() + 11;
      replicas = std::strtoul(value, nullptr, 10);
    } else {
      return Usage();
    }
    if (*value == '\0') return Usage();
  }
  if (!cluster_spec.empty()) {
    auto nodes = cluster::ParseClusterSpec(cluster_spec);
    if (!nodes.ok()) return Fail(nodes.status());
    if (options.port == 0) {
      return Fail(InvalidArgumentError(
          "--cluster requires an explicit --port listed in the spec"));
    }
    const size_t self = cluster::SelfIndex(*nodes, options.port);
    if (self == cluster::kNotAMember) {
      return Fail(InvalidArgumentError(
          StrCat("--port=", options.port, " is not in --cluster=",
                 cluster_spec)));
    }
    options.cluster.nodes = std::move(*nodes);
    options.cluster.self = self;
    options.cluster.replicas = replicas;
    // A cluster node needs ≥2 workers: a forwarded mutation parks one
    // worker on the roundtrip to the owner while the owner's replication
    // push back here needs another (docs/cluster.md §6).
    const size_t resolved = options.num_threads != 0
                                ? options.num_threads
                                : std::thread::hardware_concurrency();
    options.num_threads = std::max<size_t>(resolved, 2);
  }
  server::Server daemon(options);
  auto port = daemon.Start();
  if (!port.ok()) return Fail(port.status());
  // The one line scripts scrape for the ephemeral port; flush before
  // blocking so a pipe reader sees it immediately.
  std::printf("listening on 127.0.0.1:%d\n", *port);
  std::fflush(stdout);
  daemon.Wait();
  const server::ServerStats stats = daemon.stats();
  std::fprintf(stderr,
               "drained: %llu requests (%llu ok, %llu err, %llu busy, "
               "%llu deadline) over %llu connections\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.ok),
               static_cast<unsigned long long>(stats.errors),
               static_cast<unsigned long long>(stats.busy),
               static_cast<unsigned long long>(stats.deadline_expired),
               static_cast<unsigned long long>(stats.connections));
  return 0;
}

// `rpc --cluster=SPEC <VERB> [args...]`: route through the cluster
// client instead of one explicit daemon. The connection is always
// binary; reads retry and fail over per docs/cluster.md §4.
int CmdRpcCluster(const std::string& spec, size_t replicas,
                  const std::vector<std::string>& args) {
  auto nodes = cluster::ParseClusterSpec(spec);
  if (!nodes.ok()) return Fail(nodes.status());
  cluster::ClusterConfig config;
  config.nodes = std::move(*nodes);
  config.replicas = replicas;
  if (args.empty()) return Usage();
  cluster::ClusterClient client(config);

  const std::string& verb = args[0];
  if (verb == "OWNER") {
    // Placement query, answered from the ring without any request.
    if (args.size() != 2) return Usage();
    const size_t owner = client.OwnerOf(args[1]);
    std::vector<std::string> addrs;
    for (const size_t node : client.ReplicasOf(args[1])) {
      addrs.push_back(config.nodes[node].ToString());
    }
    std::printf("owner=%s replicas=%s\n",
                config.nodes[owner].ToString().c_str(),
                addrs.empty() ? "none" : StrJoin(addrs, ",").c_str());
    return 0;
  }
  auto roundtrip = [&]() -> Result<std::string> {
    if (verb == "LOAD" || verb == "STATE") {
      if (args.size() != 3) {
        return InvalidArgumentError(StrCat("usage: rpc --cluster=... ", verb,
                                           " <session> <file>"));
      }
      OODB_ASSIGN_OR_RETURN(std::string source, ReadFile(args[2]));
      return verb == "LOAD" ? client.Load(args[1], source)
                            : client.LoadState(args[1], source);
    }
    return client.Call(StrJoin(args, " "));
  };
  auto reply = roundtrip();
  if (!reply.ok()) {
    if (reply.status().code() == StatusCode::kResourceExhausted) {
      std::fprintf(stderr, "busy: admission queue full, retry later\n");
      return 4;
    }
    return Fail(reply.status());
  }
  std::printf("%s\n", reply->c_str());
  return 0;
}

int CmdRpc(std::vector<std::string> args) {
  // `--binary` anywhere after `rpc` switches the connection to the
  // length-prefixed framing before the request is sent. `--cluster=SPEC`
  // (plus optional `--replicas=N`) switches to routed mode.
  bool binary = false;
  std::string cluster_spec;
  size_t replicas = 1;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--binary") {
      binary = true;
      it = args.erase(it);
    } else if (it->rfind("--cluster=", 0) == 0) {
      cluster_spec = it->substr(10);
      if (cluster_spec.empty()) return Usage();
      it = args.erase(it);
    } else if (it->rfind("--replicas=", 0) == 0) {
      replicas = std::strtoul(it->c_str() + 11, nullptr, 10);
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  if (!cluster_spec.empty()) return CmdRpcCluster(cluster_spec, replicas, args);
  if (args.size() < 2) return Usage();
  const std::string& target = args[0];
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon + 1 == target.size()) {
    return Usage();
  }
  const std::string host = target.substr(0, colon);
  const int port =
      static_cast<int>(std::strtoul(target.c_str() + colon + 1, nullptr, 10));
  auto client = server::Client::Connect(host, port);
  if (!client.ok()) return Fail(client.status());
  if (binary) {
    Status negotiated = client->EnableBinary();
    if (!negotiated.ok()) return Fail(negotiated);
  }

  const std::string& verb = args[1];
  auto roundtrip = [&]() -> Result<std::string> {
    if (verb == "LOAD" || verb == "STATE") {
      // `rpc ... LOAD <session> <file.dl>`: the CLI frames the file
      // contents as the payload.
      if (args.size() != 4) {
        return InvalidArgumentError(
            StrCat("usage: rpc <host:port> ", verb, " <session> <file>"));
      }
      OODB_ASSIGN_OR_RETURN(std::string source, ReadFile(args[3]));
      return verb == "LOAD" ? client->Load(args[2], source)
                            : client->LoadState(args[2], source);
    }
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    return client->Roundtrip(StrJoin(rest, " "));
  };
  auto reply = roundtrip();
  if (!reply.ok()) {
    if (reply.status().code() == StatusCode::kResourceExhausted) {
      std::fprintf(stderr, "busy: admission queue full, retry later\n");
      return 4;
    }
    return Fail(reply.status());
  }
  std::printf("%s\n", reply->c_str());
  return 0;
}

// One parsed exposition sample as a JSON line, with an optional extra
// "node" field for cluster fan-outs. Names and label keys come from our
// own collectors; values are escaped for quotes/backslashes anyway.
void PrintSampleJson(const obs::Sample& sample, const std::string& node) {
  auto escape = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  };
  std::string line = "{";
  if (!node.empty()) {
    line += StrCat("\"node\":\"", escape(node), "\",");
  }
  line += StrCat("\"name\":\"", escape(sample.name), "\",\"labels\":{");
  bool first = true;
  for (const auto& [key, value] : sample.labels) {
    if (!first) line += ",";
    first = false;
    line += StrCat("\"", escape(key), "\":\"", escape(value), "\"");
  }
  char value[64];
  std::snprintf(value, sizeof(value), "%.17g", sample.value);
  line += StrCat("},\"value\":", value, "}");
  std::printf("%s\n", line.c_str());
}

// Fleet aggregation: merge per-node samples by (name, labels). Counters
// and most gauges add; `_max` companions and ages take the max (the sum
// of two maxima means nothing).
void MergeSamples(const std::vector<obs::Sample>& in,
                  std::vector<obs::Sample>* out) {
  auto take_max = [](const std::string& name) {
    return (name.size() >= 4 &&
            name.compare(name.size() - 4, 4, "_max") == 0) ||
           name.find("last_ack_age") != std::string::npos;
  };
  for (const obs::Sample& s : in) {
    obs::Sample* found = nullptr;
    for (obs::Sample& existing : *out) {
      if (existing.name == s.name && existing.labels == s.labels) {
        found = &existing;
        break;
      }
    }
    if (found == nullptr) {
      out->push_back(s);
    } else if (take_max(s.name)) {
      found->value = std::max(found->value, s.value);
    } else {
      found->value += s.value;
    }
  }
}

// `stats --cluster=SPEC [--json]`: fan METRICS (and HEALTH) out to every
// node in the spec and render per-node health plus a fleet-total merged
// snapshot. --json emits every per-node sample as a JSON line with a
// "node" field instead.
int CmdStatsCluster(const std::string& spec, bool json) {
  auto nodes = cluster::ParseClusterSpec(spec);
  if (!nodes.ok()) return Fail(nodes.status());
  size_t scrape_errors = 0;
  std::vector<obs::Sample> fleet;
  for (const cluster::NodeAddr& node : *nodes) {
    const std::string addr = node.ToString();
    auto scrape = [&]() -> Result<std::string> {
      OODB_ASSIGN_OR_RETURN(server::Client client,
                            server::Client::Connect(node.host, node.port));
      OODB_ASSIGN_OR_RETURN(std::string health, client.Roundtrip("HEALTH"));
      OODB_ASSIGN_OR_RETURN(std::string metrics, client.Metrics());
      OODB_ASSIGN_OR_RETURN(std::vector<obs::Sample> samples,
                            obs::ParseExposition(metrics));
      if (json) {
        for (const obs::Sample& s : samples) PrintSampleJson(s, addr);
      } else {
        std::printf("node %s: %s\n", addr.c_str(), health.c_str());
      }
      MergeSamples(samples, &fleet);
      return health;
    };
    if (auto health = scrape(); !health.ok()) {
      ++scrape_errors;
      std::fprintf(stderr, "node %s: scrape failed: %s\n", addr.c_str(),
                   std::string(health.status().message()).c_str());
    }
  }
  if (!json) {
    std::printf("\nfleet: nodes=%zu scrape_errors=%zu\n\n", nodes->size(),
                scrape_errors);
    std::printf("%s", obs::RenderHumanSnapshot(fleet).c_str());
  } else {
    std::fprintf(stderr, "fleet: nodes=%zu scrape_errors=%zu\n",
                 nodes->size(), scrape_errors);
  }
  return scrape_errors == 0 ? 0 : 1;
}

int CmdStats(const std::vector<std::string>& args) {
  bool json = false;
  std::string cluster_spec;
  std::vector<std::string> rest;
  for (const std::string& arg : args) {
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--cluster=", 0) == 0) {
      cluster_spec = arg.substr(10);
      if (cluster_spec.empty()) return Usage();
    } else {
      rest.push_back(arg);
    }
  }
  if (!cluster_spec.empty()) {
    if (!rest.empty()) return Usage();  // spec replaces the host:port
    return CmdStatsCluster(cluster_spec, json);
  }
  if (rest.empty() || rest.size() > 2) return Usage();
  const std::string& target = rest[0];
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon + 1 == target.size()) {
    return Usage();
  }
  const std::string host = target.substr(0, colon);
  const int port =
      static_cast<int>(std::strtoul(target.c_str() + colon + 1, nullptr, 10));
  auto client = server::Client::Connect(host, port);
  if (!client.ok()) return Fail(client.status());
  if (json) {
    // Scripting mode: just the parsed metrics snapshot, one JSON line
    // per sample, nothing else on stdout.
    auto metrics = client->Metrics();
    if (!metrics.ok()) return Fail(metrics.status());
    auto samples = obs::ParseExposition(*metrics);
    if (!samples.ok()) return Fail(samples.status());
    for (const obs::Sample& s : *samples) PrintSampleJson(s, "");
    return 0;
  }
  auto stats = rest.size() == 2 ? client->Stats(rest[1]) : client->Stats();
  if (!stats.ok()) return Fail(stats.status());
  std::printf("%s\n\n", stats->c_str());
  auto metrics = client->Metrics();
  if (!metrics.ok()) return Fail(metrics.status());
  // Round-tripping through the parser also validates the exposition.
  auto samples = obs::ParseExposition(*metrics);
  if (!samples.ok()) return Fail(samples.status());
  std::printf("%s", obs::RenderHumanSnapshot(*samples).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  // --stats is accepted anywhere after the command; strip it before the
  // positional dispatch below.
  bool stats = false;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--stats") {
      stats = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  if (args.empty()) return Usage();
  std::string command = args[0];

  // The daemon-side commands take no schema file.
  if (command == "serve") {
    return CmdServe({args.begin() + 1, args.end()});
  }
  if (command == "rpc") {
    return CmdRpc({args.begin() + 1, args.end()});
  }
  if (command == "stats") {
    return CmdStats({args.begin() + 1, args.end()});
  }

  // Validate the command *before* touching the schema path, so a typo'd
  // command yields usage (64), not a misleading file error.
  const bool known =
      command == "translate" || command == "print" || command == "state" ||
      command == "check" || command == "classify" || command == "minimize" ||
      command == "query" || command == "optimize";
  const size_t n = args.size();
  if (!known || n < 2) return Usage();

  Session session;
  if (auto s = session.Open(args[1]); !s.ok()) return Fail(s);

  if (command == "translate" && n == 2) return CmdTranslate(session);
  if (command == "print" && n == 2) return CmdPrint(session);
  if (command == "state" && (n == 3 || n == 4)) {
    bool deduce = n == 4 && args[3] == "--deduce";
    if (n == 4 && !deduce) return Usage();
    return CmdState(session, args[2], deduce);
  }
  if (command == "check" && n == 4) {
    return CmdCheck(session, args[2], args[3], stats);
  }
  if (command == "classify" && (n == 2 || n == 3)) {
    size_t threads = 1;
    if (n == 3) {
      const std::string& flag = args[2];
      if (flag.rfind("--threads=", 0) != 0) return Usage();
      threads = std::strtoul(flag.c_str() + 10, nullptr, 10);
      if (threads == 0) return Usage();
    }
    return CmdClassify(session, threads, stats);
  }
  if (command == "minimize" && n == 3) {
    return CmdMinimize(session, args[2]);
  }
  if (command == "query" && n == 4) {
    return CmdQuery(session, args[2], args[3]);
  }
  if (command == "optimize" && n >= 5) {
    std::vector<std::string> views(args.begin() + 4, args.end());
    return CmdOptimize(session, args[2], args[3], views);
  }
  return Usage();
}
