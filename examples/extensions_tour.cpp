// A tour of the tractability frontier (paper Sect. 4.4): which language
// extensions the core rejects and why, and what deciding them anyway
// costs. Companion to bench_extensions.
//
//   $ ./extensions_tour
#include <cstdio>

#include "calculus/subsumption.h"
#include "ext/brute_force.h"
#include "ext/chase.h"
#include "ext/disjunction.h"
#include "ext/families.h"
#include "ql/print.h"
#include "schema/schema.h"

int main() {
  using namespace oodb;

  SymbolTable symbols;
  ql::TermFactory terms(&symbols);
  schema::Schema sigma(&terms);
  ql::Attr p{symbols.Intern("p"), false};

  std::printf("1. The schema language refuses the NP-hard extensions:\n\n");
  auto try_axiom = [&](const char* label, ql::ConceptId rhs) {
    Status s = sigma.AddInclusion(symbols.Intern("A"), rhs);
    std::printf("   A ⊑ %-14s → %s\n", label, s.ToString().c_str());
  };
  try_axiom("∃p.B", terms.Exists(terms.Step(p, terms.Primitive("B"))));
  try_axiom("∀p⁻¹.B", terms.All(p.Inverse(), terms.Primitive("B")));
  try_axiom("{c}", terms.Singleton("c"));
  try_axiom("B (fine)", terms.Primitive("B"));

  std::printf(
      "\n2. The query language refuses ∀ (Prop. 4.11):\n\n");
  calculus::SubsumptionChecker checker(sigma);
  auto bad = checker.Subsumes(terms.All(p, terms.Primitive("B")),
                              terms.Top());
  std::printf("   ∀p.B as a query → %s\n\n",
              bad.status().ToString().c_str());

  std::printf(
      "3. Why qualified existentials blow up: the unguarded chase on the\n"
      "   binary-tree schema (A_i ⊑ ∃P.L_{i+1}, A_i ⊑ ∃P.R_{i+1}):\n\n");
  for (size_t depth : {4u, 8u, 12u}) {
    SymbolTable chase_symbols;
    ext::ChaseFamily family = ext::MakeBinaryTreeFamily(&chase_symbols, depth);
    ext::ChaseResult result =
        ext::UnguardedChase(family.sigma, family.start, family.goal);
    std::printf("   depth %2zu → %7zu individuals\n", depth,
                result.individuals);
  }

  std::printf(
      "\n4. Inverse axioms entail inclusions no S-rule can see (the paper's\n"
      "   Σ₁ = {A ⊑ ∃P, A ⊑ ∀P.A', A' ⊑ ∀P⁻¹.A''} ⊨ A ⊑ A''):\n\n");
  {
    SymbolTable s2;
    ext::ChaseFamily family = ext::MakeInverseChainFamily(&s2, 1);
    ext::ChaseResult result =
        ext::UnguardedChase(family.sigma, family.start, family.goal);
    std::printf("   chase verdict: A0 ⊑ A1 is %s\n",
                result.entailed ? "entailed" : "not entailed");
  }

  std::printf(
      "\n5. Disjunction: satisfiability via DNF — every disjunct is a core\n"
      "   completion, and refutation visits all of them:\n\n");
  {
    schema::Schema dsigma(&terms);
    ext::AddDisjunctionSchema(&dsigma);
    ext::XConceptPtr family = ext::MakeDisjunctionClashFamily(&terms, 3);
    std::printf("   C = %s\n", ext::XToString(symbols, family).c_str());
    ext::DisjunctionStats stats;
    auto sat = ext::SatisfiableWithDisjunction(dsigma, family, &terms,
                                               &stats);
    std::printf("   satisfiable: %s (after %zu core completions)\n",
                *sat ? "yes" : "no", stats.core_calls);
  }

  std::printf(
      "\n6. Atomic complements: only brute-force model search remains:\n\n");
  {
    SymbolTable s3;
    ext::ComplementPair pair = ext::MakeComplementFamily(&s3, 3);
    ext::ExtSchema empty;
    ext::BruteForceResult r = ext::BruteForceSubsumes(
        empty, pair.c, pair.d, pair.concepts, pair.attrs, {});
    std::printf("   %s ⊑ %s: %s (%llu interpretations enumerated)\n",
                ext::XToString(s3, pair.c).c_str(),
                ext::XToString(s3, pair.d).c_str(),
                r.subsumed ? "yes" : "no",
                static_cast<unsigned long long>(r.interpretations));
  }

  return 0;
}
