#!/bin/sh
# Cluster smoke test: start three daemons sharing one --cluster spec,
# load sessions and define views through the routed client
# (`rpc --cluster`), check verdicts both routed and per-node (FORWARD
# and replica-read paths), then kill -9 the owner of one session and
# assert reads on it still answer — with verdicts identical to before
# the crash — while the other session is untouched. This is the CI
# cluster-smoke job.
#
# usage: cluster_smoke.sh <path-to-oodbsub> <examples-data-dir>
set -e
BIN="$1"
DATA="$2"
TMP="${TMPDIR:-/tmp}/oodbsub_cluster_smoke.$$"
mkdir -p "$TMP"

P1= P2= P3= SPEC=
SRV1= SRV2= SRV3=
cleanup() {
  for pid in $SRV1 $SRV2 $SRV3; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$TMP"
}
trap cleanup EXIT

# Static membership needs ports known up front: probe bases derived from
# the PID until all three daemons come up (a neighbour port may be taken).
start_node() { # $1=port $2=logname  -> pid
  "$BIN" serve --port="$1" --threads=2 --max-pending=64 \
    --cluster="$SPEC" --replicas=1 \
    >"$TMP/$2.out" 2>"$TMP/$2.err" &
  echo $!
}
up() { # $1=port $2=logname  -> 0 once the daemon reports listening
  i=0
  while [ $i -lt 100 ]; do
    grep -q "^listening on 127\.0\.0\.1:$1\$" "$TMP/$2.out" 2>/dev/null \
      && return 0
    i=$((i+1))
    sleep 0.1
  done
  return 1
}

attempt=0
while [ $attempt -lt 5 ]; do
  BASE=$(( 21000 + ( ($$ + attempt * 311) % 20000 ) ))
  P1=$BASE P2=$((BASE+1)) P3=$((BASE+2))
  SPEC="127.0.0.1:$P1,127.0.0.1:$P2,127.0.0.1:$P3"
  SRV1=$(start_node "$P1" n1)
  SRV2=$(start_node "$P2" n2)
  SRV3=$(start_node "$P3" n3)
  if up "$P1" n1 && up "$P2" n2 && up "$P3" n3; then
    break
  fi
  for pid in $SRV1 $SRV2 $SRV3; do kill -9 "$pid" 2>/dev/null || true; done
  SRV1= SRV2= SRV3=
  attempt=$((attempt+1))
done
[ -n "$SRV3" ] || { echo "FAIL: could not start a 3-node fleet"; exit 1; }
echo "fleet on $SPEC"

RPC="$BIN rpc --cluster=$SPEC --replicas=1"

# Two sessions with different owners, so killing one owner leaves the
# other session's owner alive.
A=
B=
i=0
while [ $i -lt 100 ]; do
  S="sess$i"
  O=$($RPC OWNER "$S" | sed -n 's/^owner=\([^ ]*\).*/\1/p')
  [ -n "$O" ] || { echo "FAIL: OWNER gave no answer for $S"; exit 1; }
  if [ -z "$A" ]; then
    A=$S; OWNER_A=$O
  elif [ "$O" != "$OWNER_A" ]; then
    B=$S; break
  fi
  i=$((i+1))
done
[ -n "$B" ] || { echo "FAIL: no two sessions with distinct owners"; exit 1; }
echo "session $A owned by $OWNER_A, session $B owned by $O"

for S in "$A" "$B"; do
  $RPC LOAD "$S" "$DATA/medical.dl" | grep -q "session=$S"
  $RPC VIEW "$S" ViewPatient        | grep -q 'extent='
done

# Routed verdicts, and the same answers from every node directly: the
# owner serves locally, its replica serves the replica-read path, and
# the third node proxies over FORWARD.
for S in "$A" "$B"; do
  $RPC CHECK "$S" QueryPatient ViewPatient | grep -q '^subsumed=true$'
  $RPC CHECK "$S" ViewPatient QueryPatient | grep -q '^subsumed=false$'
  for T in "127.0.0.1:$P1" "127.0.0.1:$P2" "127.0.0.1:$P3"; do
    "$BIN" rpc "$T" CHECK "$S" QueryPatient ViewPatient \
      | grep -q '^subsumed=true$'
    "$BIN" rpc "$T" CHECK "$S" ViewPatient QueryPatient \
      | grep -q '^subsumed=false$'
  done
done

# The cluster stats line shows replication happened.
"$BIN" rpc "127.0.0.1:$P1" STATS | grep -q 'cluster: nodes=3'

# Every node reports healthy, and the fleet-wide scrape renders all
# three plus the merged totals with zero scrape errors.
for T in "127.0.0.1:$P1" "127.0.0.1:$P2" "127.0.0.1:$P3"; do
  "$BIN" rpc "$T" HEALTH | grep -q '^status=ok'
done
"$BIN" stats --cluster="$SPEC" >"$TMP/fleet.out"
for T in "127.0.0.1:$P1" "127.0.0.1:$P2" "127.0.0.1:$P3"; do
  grep -q "^node $T: status=ok" "$TMP/fleet.out"
done
grep -q 'scrape_errors=0' "$TMP/fleet.out"

# Kill the owner of A (kill -9: no drain, no goodbye) and read on.
case "$OWNER_A" in
  *:$P1) kill -9 "$SRV1"; SRV1= ;;
  *:$P2) kill -9 "$SRV2"; SRV2= ;;
  *:$P3) kill -9 "$SRV3"; SRV3= ;;
  *) echo "FAIL: unexpected owner $OWNER_A"; exit 1 ;;
esac
echo "killed owner of $A ($OWNER_A)"

# Wait for the fleet to notice by polling HEALTH, not by sleeping: a
# forwarded mutation makes a survivor dial the dead owner, which marks
# the peer down and flips that survivor's HEALTH to degraded.
SURV=
for T in "127.0.0.1:$P1" "127.0.0.1:$P2" "127.0.0.1:$P3"; do
  [ "$T" = "$OWNER_A" ] || SURV=$T
done
i=0
until "$BIN" rpc "$SURV" HEALTH | grep -q '^status=degraded'; do
  "$BIN" rpc "$SURV" VIEW "$A" QueryPatient >/dev/null 2>&1 || true
  i=$((i+1))
  [ $i -lt 50 ] || { echo "FAIL: survivor never reported degraded"; exit 1; }
  sleep 0.1
done
echo "survivor $SURV reports degraded"

# Reads on A fail over to its replica — verdicts unchanged, zero
# mismatches — and B never notices. Repeat to exercise the retry loop.
j=0
while [ $j -lt 3 ]; do
  $RPC CHECK "$A" QueryPatient ViewPatient | grep -q '^subsumed=true$'
  $RPC CHECK "$A" ViewPatient QueryPatient | grep -q '^subsumed=false$'
  $RPC CHECK "$B" QueryPatient ViewPatient | grep -q '^subsumed=true$'
  j=$((j+1))
done
$RPC BCHECK "$A" QueryPatient ViewPatient ViewPatient QueryPatient \
  | grep -q '^subsumed=true,false$'

# Mutations on the dead owner's session must fail fast, not hang.
if $RPC VIEW "$A" QueryPatient >/dev/null 2>&1; then
  echo "FAIL: mutation on an ownerless session succeeded"
  exit 1
fi

echo "smoke ok: fleet served, failed over, verdicts never changed"
