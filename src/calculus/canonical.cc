#include "calculus/canonical.h"

#include <vector>

#include "ql/term.h"

namespace oodb::calculus {

Result<CanonicalModel> BuildCanonicalModel(const CompletionEngine& engine,
                                           const schema::Schema& sigma) {
  if (engine.clash()) {
    return FailedPreconditionError(
        "canonical model requires a clash-free completion");
  }
  const ConstraintSystem& facts = engine.facts();
  const ql::TermFactory& terms = sigma.terms();

  CanonicalModel model;
  // Collect every canonical-representative individual appearing in F.
  std::vector<Ind> inds;
  auto touch = [&](Ind i) {
    Ind r = engine.Find(i);
    if (model.ind_to_element.emplace(r.id, 0).second) inds.push_back(r);
  };
  for (const MembFact& m : facts.membs()) touch(m.s);
  for (const AttrFact& a : facts.attrs()) {
    touch(a.s);
    touch(a.t);
  }
  for (const PathFact& p : facts.paths()) {
    touch(p.s);
    touch(p.t);
  }

  model.interpretation = interp::Interpretation(inds.size() + 1);
  for (size_t i = 0; i < inds.size(); ++i) {
    model.ind_to_element[inds[i].id] = static_cast<int>(i);
  }
  model.u_element = static_cast<int>(inds.size());
  model.interpretation.MarkUniversal(model.u_element);

  // Constants interpret themselves (UNA holds by construction: distinct
  // constants are distinct representatives in a clash-free system).
  for (Ind i : inds) {
    if (engine.inds().IsConstant(i)) {
      OODB_RETURN_IF_ERROR(model.interpretation.AssignConstant(
          engine.inds().ConstantSymbol(i), model.ind_to_element[i.id]));
    }
  }

  // Primitive memberships and attribute fillers from F.
  for (const MembFact& m : facts.membs()) {
    const ql::ConceptNode& n = terms.node(m.c);
    if (n.kind == ql::ConceptKind::kPrimitive) {
      model.interpretation.AddToConcept(
          n.sym, model.ind_to_element[engine.Find(m.s).id]);
    }
  }
  for (const AttrFact& a : facts.attrs()) {
    model.interpretation.AddEdge(a.p,
                                 model.ind_to_element[engine.Find(a.s).id],
                                 model.ind_to_element[engine.Find(a.t).id]);
  }

  // (s, u) ∈ P^I for every s with no P-filler in F but some A with
  // s:A ∈ F and A ⊑ ∃P ∈ Σ.
  for (Ind s : inds) {
    for (ql::ConceptId c : facts.ConceptsOf(s)) {
      const ql::ConceptNode& n = terms.node(c);
      if (n.kind != ql::ConceptKind::kPrimitive) continue;
      for (Symbol p : sigma.NecessaryAttrs(n.sym)) {
        if (!facts.HasAnyPrimFiller(s, p)) {
          model.interpretation.AddEdge(p, model.ind_to_element[s.id],
                                       model.u_element);
        }
      }
    }
  }

  model.goal_element = model.ind_to_element[engine.GoalInd().id];
  return model;
}

}  // namespace oodb::calculus
