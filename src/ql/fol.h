// First-order formulas over unary and binary predicates, and the
// transformational semantics of SL/QL (Table 1, column 2): every concept C
// maps to a formula F_C(x) with one free variable, every schema axiom to a
// closed formula (Figure 2 / Figure 6 of the paper).
#ifndef OODB_QL_FOL_H_
#define OODB_QL_FOL_H_

#include <memory>
#include <string>
#include <vector>

#include "base/symbol.h"
#include "ql/term.h"
#include "ql/term_factory.h"

namespace oodb::ql {

// A FOL term: a variable or a constant. Variables and constants live in
// separate name spaces (`kind` disambiguates equal symbols).
struct FolTerm {
  enum class Kind : uint8_t { kVar, kConst };
  Kind kind = Kind::kVar;
  Symbol name;

  static FolTerm Var(Symbol s) { return {Kind::kVar, s}; }
  static FolTerm Const(Symbol s) { return {Kind::kConst, s}; }

  friend bool operator==(const FolTerm& a, const FolTerm& b) {
    return a.kind == b.kind && a.name == b.name;
  }
};

enum class FolKind : uint8_t {
  kTrue,
  kAtomUnary,   // pred(t1)
  kAtomBinary,  // pred(t1, t2)
  kEq,          // t1 ≐ t2
  kNot,
  kAnd,  // n-ary
  kOr,   // n-ary
  kImplies,
  kExists,  // quantifies `var` over children[0]
  kForall,
};

struct Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

// Immutable formula node. Built via the Make* helpers below.
struct Formula {
  FolKind kind = FolKind::kTrue;
  Symbol pred;
  FolTerm t1, t2;
  Symbol var;  // for quantifiers
  std::vector<FormulaPtr> children;
};

FormulaPtr MakeTrue();
FormulaPtr MakeUnary(Symbol pred, FolTerm t);
FormulaPtr MakeBinary(Symbol pred, FolTerm t1, FolTerm t2);
FormulaPtr MakeEq(FolTerm t1, FolTerm t2);
FormulaPtr MakeNot(FormulaPtr f);
// And/Or flatten nested conjunctions and drop kTrue units.
FormulaPtr MakeAnd(std::vector<FormulaPtr> fs);
FormulaPtr MakeOr(std::vector<FormulaPtr> fs);
FormulaPtr MakeImplies(FormulaPtr lhs, FormulaPtr rhs);
FormulaPtr MakeExists(Symbol var, FormulaPtr body);
FormulaPtr MakeForall(Symbol var, FormulaPtr body);

// Generates fresh FOL variable symbols y1, y2, ... within one translation.
class FolVarGen {
 public:
  explicit FolVarGen(SymbolTable* symbols) : symbols_(symbols) {}
  Symbol Fresh();

 private:
  SymbolTable* symbols_;
  int counter_ = 0;
};

// Translates concept `c` into F_c(free_var) per Table 1 column 2.
// Attribute atoms use the primitive predicate: x P⁻¹ y emits P(y, x).
FormulaPtr ConceptToFol(const TermFactory& f, ConceptId c, FolTerm free_var,
                        FolVarGen& vars);

// Translates the path relation F_p(s, t): a conjunction with existentially
// quantified intermediate objects. The empty path yields s ≐ t.
FormulaPtr PathToFol(const TermFactory& f, PathId p, FolTerm s, FolTerm t,
                     FolVarGen& vars);

// ∀x. A(x) → F_D(x)   for a schema axiom A ⊑ D (Figure 2 style).
FormulaPtr InclusionAxiomToFol(const TermFactory& f, Symbol lhs, ConceptId d,
                               FolVarGen& vars);

// ∀x,y. P(x,y) → A₁(x) ∧ A₂(y)   for a typing axiom P ⊑ A₁×A₂.
FormulaPtr TypingAxiomToFol(const TermFactory& f, Symbol attr, Symbol domain,
                            Symbol range, FolVarGen& vars);

// UTF-8 rendering, e.g. "∀x. Patient(x) → Person(x)".
std::string FormulaToString(const TermFactory& f, const FormulaPtr& formula);

}  // namespace oodb::ql

#endif  // OODB_QL_FOL_H_
