// Shared test fixture: the paper's running example (Figures 1, 3, 5, 6).
//
// Builds the medical schema Σ and the two concepts
//   C_Q (QueryPatient)  = Male ⊓ Patient ⊓
//       ∃(consults:Female) ≐ (suffers:⊤)(skilled_in⁻¹:Doctor)
//   D_V (ViewPatient)   = Patient ⊓ ∃(name:String) ⊓
//       ∃(consults:Doctor)(skilled_in:Disease) ≐ (suffers:Disease)
// with C_Q ⊑_Σ D_V (Sect. 4.1 / Figure 11) but not conversely.
#ifndef OODB_TESTS_MEDICAL_FIXTURE_H_
#define OODB_TESTS_MEDICAL_FIXTURE_H_

#include <memory>

#include "base/symbol.h"
#include "ql/term_factory.h"
#include "schema/schema.h"

namespace oodb::testing {

struct MedicalFixture {
  SymbolTable symbols;
  std::unique_ptr<ql::TermFactory> terms;
  std::unique_ptr<schema::Schema> sigma;

  Symbol patient, person, doctor, male, female, drug, disease, string_class,
      topic;
  Symbol takes, consults, suffers, name, skilled_in;

  ql::ConceptId query_patient = ql::kInvalidConcept;  // C_Q
  ql::ConceptId view_patient = ql::kInvalidConcept;   // D_V

  MedicalFixture() {
    terms = std::make_unique<ql::TermFactory>(&symbols);
    sigma = std::make_unique<schema::Schema>(terms.get());

    patient = symbols.Intern("Patient");
    person = symbols.Intern("Person");
    doctor = symbols.Intern("Doctor");
    male = symbols.Intern("Male");
    female = symbols.Intern("Female");
    drug = symbols.Intern("Drug");
    disease = symbols.Intern("Disease");
    string_class = symbols.Intern("String");
    topic = symbols.Intern("Topic");
    takes = symbols.Intern("takes");
    consults = symbols.Intern("consults");
    suffers = symbols.Intern("suffers");
    name = symbols.Intern("name");
    skilled_in = symbols.Intern("skilled_in");

    // Figure 6: the schema axioms of the medical database.
    (void)sigma->AddIsA(patient, person);
    (void)sigma->AddValueRestriction(patient, takes, drug);
    (void)sigma->AddValueRestriction(patient, consults, doctor);
    (void)sigma->AddValueRestriction(patient, suffers, disease);
    (void)sigma->AddNecessary(patient, suffers);
    (void)sigma->AddValueRestriction(person, name, string_class);
    (void)sigma->AddNecessary(person, name);
    (void)sigma->AddFunctional(person, name);
    (void)sigma->AddValueRestriction(doctor, skilled_in, disease);
    (void)sigma->AddTyping(skilled_in, person, topic);

    query_patient = BuildQueryPatient();
    view_patient = BuildViewPatient();
  }

  ql::Attr A(Symbol p, bool inverted = false) const {
    return ql::Attr{p, inverted};
  }

  ql::ConceptId BuildQueryPatient() {
    ql::TermFactory& f = *terms;
    // l1: (consults: Female)
    ql::PathId p = f.MakePath({{A(consults), f.Primitive(female)}});
    // l2: suffers.(specialist: Doctor) — specialist is skilled_in⁻¹.
    ql::PathId q = f.MakePath({{A(suffers), f.Top()},
                               {A(skilled_in, true), f.Primitive(doctor)}});
    return f.AndAll({f.Primitive(male), f.Primitive(patient),
                     f.AgreePair(p, q)});
  }

  ql::ConceptId BuildViewPatient() {
    ql::TermFactory& f = *terms;
    ql::PathId name_path =
        f.MakePath({{A(name), f.Primitive(string_class)}});
    ql::PathId p = f.MakePath({{A(consults), f.Primitive(doctor)},
                               {A(skilled_in), f.Primitive(disease)}});
    ql::PathId q = f.MakePath({{A(suffers), f.Primitive(disease)}});
    return f.AndAll({f.Primitive(patient), f.Exists(name_path),
                     f.AgreePair(p, q)});
  }
};

}  // namespace oodb::testing

#endif  // OODB_TESTS_MEDICAL_FIXTURE_H_
