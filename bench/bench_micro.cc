// Google-benchmark microbenchmarks of the core operations: completion
// runs at several sizes, DL parsing + translation, concept evaluation
// over interpretations, and CQ containment. Complements the table-style
// experiment binaries with statistically sampled timings.
#include <benchmark/benchmark.h>

#include <memory>

#include "base/rng.h"
#include "base/strings.h"
#include "calculus/subsumption.h"
#include "cq/cq.h"
#include "dl/analyzer.h"
#include "dl/translate.h"
#include "gen/generators.h"
#include "interp/eval.h"
#include "interp/model_gen.h"
#include "interp/signature.h"
#include "ql/term_factory.h"

namespace {

using namespace oodb;

// Chain subsumption: A_0 ⊑ ∃(p:A_1)…(p:A_n) under a necessary/∀ chain.
void BM_SubsumptionChain(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SymbolTable symbols;
  ql::TermFactory terms(&symbols);
  schema::Schema sigma(&terms);
  Symbol p = symbols.Intern("p");
  auto a = [&](size_t i) { return symbols.Intern(StrCat("A", i)); };
  for (size_t i = 0; i < n; ++i) {
    (void)sigma.AddNecessary(a(i), p);
    (void)sigma.AddValueRestriction(a(i), p, a(i + 1));
  }
  std::vector<ql::Restriction> steps;
  for (size_t i = 1; i <= n; ++i) {
    steps.push_back(ql::Restriction{ql::Attr{p, false},
                                    terms.Primitive(a(i))});
  }
  ql::ConceptId c = terms.Primitive(a(0));
  ql::ConceptId d = terms.Exists(terms.MakePath(std::move(steps)));
  calculus::SubsumptionChecker checker(sigma);

  size_t individuals = 0;
  for (auto _ : state) {
    auto outcome = checker.SubsumesDetailed(c, d);
    benchmark::DoNotOptimize(outcome);
    individuals = outcome->stats.individuals;
  }
  state.counters["individuals"] = static_cast<double>(individuals);
}
BENCHMARK(BM_SubsumptionChain)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// Random-instance subsumption at growing concept sizes.
void BM_SubsumptionRandom(benchmark::State& state) {
  Rng rng(42);
  SymbolTable symbols;
  ql::TermFactory terms(&symbols);
  schema::Schema sigma(&terms);
  gen::GeneratedSchema sig = gen::GenerateSchema(&sigma, rng);
  gen::ConceptGenOptions options;
  options.max_conjuncts = static_cast<size_t>(state.range(0));
  ql::ConceptId c = gen::GenerateConcept(sig, &terms, rng, options);
  ql::ConceptId d = gen::WeakenConcept(sigma, &terms, c, rng, 2);
  calculus::SubsumptionChecker checker(sigma);
  for (auto _ : state) {
    auto verdict = checker.Subsumes(c, d);
    benchmark::DoNotOptimize(verdict);
  }
}
BENCHMARK(BM_SubsumptionRandom)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// DL front end: tokenize + parse + analyze + translate the medical schema.
void BM_DlFrontEnd(benchmark::State& state) {
  constexpr const char* kSource = R"(
Class Person with
  attribute, necessary, single
    name: String
end Person
Class Patient isA Person with
  attribute
    takes: Drug
    consults: Doctor
  attribute, necessary
    suffers: Disease
  constraint:
    not (this in Doctor)
end Patient
QueryClass Q isA Patient with
  derived
    l1: (consults: Doctor).(takes: Drug)
    l2: (suffers: Disease)
  where
    l1 = l2
end Q
)";
  for (auto _ : state) {
    SymbolTable symbols;
    ql::TermFactory terms(&symbols);
    schema::Schema sigma(&terms);
    auto model = dl::ParseAndAnalyze(kSource, &symbols);
    dl::Translator translator(*model, &terms);
    (void)translator.BuildSchema(&sigma);
    auto q = translator.QueryConcept(symbols.Find("Q"));
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_DlFrontEnd);

// Concept evaluation over a random interpretation.
void BM_ConceptEval(benchmark::State& state) {
  Rng rng(4711);
  SymbolTable symbols;
  ql::TermFactory terms(&symbols);
  schema::Schema sigma(&terms);
  gen::GeneratedSchema sig = gen::GenerateSchema(&sigma, rng);
  ql::ConceptId c = gen::GenerateConcept(sig, &terms, rng);
  interp::Signature isig = interp::CollectSignature(terms, {c}, &sigma);
  interp::ModelGenOptions options;
  options.domain_size = static_cast<size_t>(state.range(0));
  auto model = interp::GenerateModel(sigma, isig, options, rng);
  for (auto _ : state) {
    auto extent = interp::ConceptEval(*model, terms, c);
    benchmark::DoNotOptimize(extent);
  }
}
BENCHMARK(BM_ConceptEval)->Arg(16)->Arg(64)->Arg(256);

// Chandra–Merlin containment on random QL-translated queries.
void BM_CqContainment(benchmark::State& state) {
  Rng rng(271828);
  SymbolTable symbols;
  ql::TermFactory terms(&symbols);
  schema::Schema sigma(&terms);
  gen::SchemaGenOptions no_axioms;
  no_axioms.isa_prob = 0;
  no_axioms.value_restrictions = 0;
  no_axioms.typing_prob = 0;
  gen::GeneratedSchema sig = gen::GenerateSchema(&sigma, rng, no_axioms);
  ql::ConceptId c = gen::GenerateConcept(sig, &terms, rng);
  ql::ConceptId d = gen::WeakenConcept(sigma, &terms, c, rng, 2);
  auto q1 = *cq::ConceptToCq(terms, c, &symbols);
  auto q2 = *cq::ConceptToCq(terms, d, &symbols);
  for (auto _ : state) {
    bool contained = cq::CqContained(q1, q2);
    benchmark::DoNotOptimize(contained);
  }
}
BENCHMARK(BM_CqContainment);

}  // namespace

BENCHMARK_MAIN();
