// Tests for the workload generators: determinism, well-formedness of
// generated artifacts, and the soundness of the weakening transformations
// (checked semantically on random models, independently of the calculus).
#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/strings.h"
#include "calculus/engine.h"
#include "gen/generators.h"
#include "interp/eval.h"
#include "interp/model_gen.h"
#include "interp/signature.h"
#include "ql/print.h"
#include "ql/term_factory.h"

namespace oodb::gen {
namespace {

TEST(Generators, DeterministicForFixedSeed) {
  auto run = [](uint64_t seed) {
    SymbolTable symbols;
    ql::TermFactory f(&symbols);
    schema::Schema sigma(&f);
    Rng rng(seed);
    GeneratedSchema sig = GenerateSchema(&sigma, rng);
    ql::ConceptId c = GenerateConcept(sig, &f, rng);
    return ql::ConceptToString(f, c) +
           oodb::StrCat("#axioms=", sigma.inclusions().size());
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

TEST(Generators, SchemaIsWellFormedSl) {
  // GenerateSchema only emits the four SL shapes; Schema validation would
  // have rejected anything else, so reaching a non-trivial size proves it.
  SymbolTable symbols;
  ql::TermFactory f(&symbols);
  schema::Schema sigma(&f);
  Rng rng(5);
  SchemaGenOptions options;
  options.num_classes = 20;
  options.value_restrictions = 30;
  GenerateSchema(&sigma, rng, options);
  EXPECT_GT(sigma.inclusions().size(), 10u);
}

TEST(Generators, ConceptsArePureQl) {
  SymbolTable symbols;
  ql::TermFactory f(&symbols);
  schema::Schema sigma(&f);
  Rng rng(6);
  GeneratedSchema sig = GenerateSchema(&sigma, rng);
  for (int i = 0; i < 50; ++i) {
    ql::ConceptId c = GenerateConcept(sig, &f, rng);
    EXPECT_TRUE(calculus::ValidateQlConcept(f, c).ok());
  }
}

// Semantic check of WeakenConcept, independent of the subsumption
// calculus: on random Σ-models, every instance of C is an instance of the
// weakened concept.
TEST(Generators, WeakeningIsSemanticallySound) {
  Rng rng(20260101);
  for (int round = 0; round < 60; ++round) {
    SymbolTable symbols;
    ql::TermFactory f(&symbols);
    schema::Schema sigma(&f);
    GeneratedSchema sig = GenerateSchema(&sigma, rng);
    ql::ConceptId c = GenerateConcept(sig, &f, rng);
    ql::ConceptId weaker = WeakenConcept(sigma, &f, c, rng, 3);

    interp::Signature isig =
        interp::CollectSignature(f, {c, weaker}, &sigma);
    auto model =
        interp::GenerateModel(sigma, isig, interp::ModelGenOptions(), rng);
    ASSERT_TRUE(model.ok()) << model.status();
    for (size_t e = 0; e < model->domain_size(); ++e) {
      int x = static_cast<int>(e);
      if (interp::InConceptEval(*model, f, c, x)) {
        ASSERT_TRUE(interp::InConceptEval(*model, f, weaker, x))
            << ql::ConceptToString(f, c) << "  weakened to  "
            << ql::ConceptToString(f, weaker);
      }
    }
  }
}

TEST(Generators, WeakeningEventuallyReachesTop) {
  SymbolTable symbols;
  ql::TermFactory f(&symbols);
  schema::Schema sigma(&f);
  Rng rng(77);
  GeneratedSchema sig = GenerateSchema(&sigma, rng);
  ql::ConceptId c = GenerateConcept(sig, &f, rng);
  // Many weakening steps shrink the concept; sizes never grow.
  size_t prev = f.ConceptSize(c);
  ql::ConceptId cur = c;
  for (int i = 0; i < 50; ++i) {
    cur = WeakenConcept(sigma, &f, cur, rng, 1);
    size_t size = f.ConceptSize(cur);
    EXPECT_LE(size, prev + 1);  // superclass swaps keep size constant
    prev = size;
  }
}

}  // namespace
}  // namespace oodb::gen
