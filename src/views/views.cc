#include "views/views.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "base/strings.h"
#include "calculus/services.h"
#include "db/concept_eval.h"
#include "ql/print.h"

namespace oodb::views {

ViewCatalog::ViewCatalog(db::Database* database, dl::Translator* translator)
    : db_(database), translator_(translator), evaluator_(*database) {}

Status ViewCatalog::DefineView(Symbol query_class) {
  return DefineViewFromAnswers(query_class, {});
}

Status ViewCatalog::DefineViewFromAnswers(
    Symbol query_class, std::vector<db::ObjectId> answers) {
  if (index_.count(query_class) > 0) {
    return AlreadyExistsError(
        StrCat("view '", db_->symbols().Name(query_class),
               "' already defined"));
  }
  const dl::ClassDef* def = db_->model().FindClass(query_class);
  if (def == nullptr || !def->is_query) {
    return InvalidArgumentError(
        StrCat("'", db_->symbols().Name(query_class),
               "' is not a query class"));
  }
  if (!dl::IsDeeplyStructural(db_->model(), query_class)) {
    return FailedPreconditionError(
        StrCat("query class '", db_->symbols().Name(query_class),
               "' has a non-structural part (possibly through a referenced "
               "query class) and cannot define a view (paper Sect. 3: views "
               "must be captured completely by their concept)"));
  }
  View view;
  view.name = query_class;
  OODB_ASSIGN_OR_RETURN(view.concept_id,
                        translator_->QueryConcept(query_class));
  view.radius = RadiusOf(query_class);
  if (answers.empty()) {
    OODB_RETURN_IF_ERROR(Materialize(view));
  } else {
    // Piggyback: reuse the caller's freshly computed answers.
    view.extent = std::move(answers);
    view.materialized_version = db_->version();
    view.refresh_count = 1;
  }
  index_.emplace(query_class, views_.size());
  views_.push_back(std::move(view));
  return Status::Ok();
}

namespace {

// Maintenance radius of a bare concept: the longest filtered path chain.
size_t ConceptRadius(const ql::TermFactory& terms, ql::ConceptId c) {
  const ql::ConceptNode n = terms.node(c);
  switch (n.kind) {
    case ql::ConceptKind::kAnd:
      return std::max(ConceptRadius(terms, n.lhs),
                      ConceptRadius(terms, n.rhs));
    case ql::ConceptKind::kExists:
    case ql::ConceptKind::kAgree: {
      size_t radius = 0;
      for (const ql::Restriction& r : terms.path(n.path)) {
        radius += 1 + ConceptRadius(terms, r.filter);
      }
      return radius;
    }
    default:
      return 0;
  }
}

}  // namespace

Status ViewCatalog::DefineConceptView(Symbol name, ql::ConceptId concept_id) {
  if (index_.count(name) > 0 || db_->model().FindClass(name) != nullptr) {
    return AlreadyExistsError(
        StrCat("'", db_->symbols().Name(name),
               "' already names a view or class"));
  }
  const ql::TermFactory& terms = translator_->terms();
  OODB_RETURN_IF_ERROR(calculus::ValidateQlConcept(terms, concept_id));
  for (ql::ConceptId sub : terms.Subconcepts(concept_id)) {
    const ql::ConceptNode& n = terms.node(sub);
    if (n.kind == ql::ConceptKind::kSingleton &&
        !db_->FindObject(n.sym).has_value()) {
      return FailedPreconditionError(
          StrCat("singleton {", db_->symbols().Name(n.sym),
                 "} does not name a database object"));
    }
  }
  View view;
  view.name = name;
  view.concept_id = concept_id;
  view.concept_only = true;
  view.radius = ConceptRadius(terms, concept_id);
  OODB_RETURN_IF_ERROR(Materialize(view));
  index_.emplace(name, views_.size());
  views_.push_back(std::move(view));
  return Status::Ok();
}

Status ViewCatalog::DropView(Symbol query_class) {
  auto it = index_.find(query_class);
  if (it == index_.end()) {
    return NotFoundError(StrCat("no view named '",
                                db_->symbols().Name(query_class), "'"));
  }
  size_t pos = it->second;
  views_.erase(views_.begin() + pos);
  index_.erase(it);
  for (auto& [name, idx] : index_) {
    if (idx > pos) --idx;
  }
  return Status::Ok();
}

Status ViewCatalog::Materialize(View& view) {
  if (view.concept_only) {
    const ql::TermFactory& terms = translator_->terms();
    view.extent.clear();
    for (db::ObjectId o = 0; o < db_->num_objects(); ++o) {
      if (db::ConceptHolds(*db_, terms, view.concept_id, o)) {
        view.extent.push_back(o);
      }
    }
  } else {
    OODB_ASSIGN_OR_RETURN(view.extent, evaluator_.Evaluate(view.name));
  }
  view.materialized_version = db_->version();
  ++view.refresh_count;
  return Status::Ok();
}

Status ViewCatalog::RefreshAll() {
  for (View& view : views_) {
    if (view.materialized_version != db_->version()) {
      OODB_RETURN_IF_ERROR(Materialize(view));
    }
  }
  return Status::Ok();
}

size_t ViewCatalog::RadiusOf(Symbol query_class) const {
  // Longest dependency chain: derived-path length plus the radius of any
  // query class referenced from a filter or a superclass.
  std::unordered_set<Symbol> visiting;
  std::function<size_t(Symbol)> radius = [&](Symbol cls) -> size_t {
    const dl::ClassDef* def = db_->model().FindClass(cls);
    if (def == nullptr || !def->is_query) return 0;
    if (!visiting.insert(cls).second) return 0;  // cycle guard
    size_t best = 0;
    for (Symbol super : def->supers) best = std::max(best, radius(super));
    for (const dl::ResolvedPath& path : def->derived) {
      size_t chain = 0;
      for (const dl::ResolvedStep& step : path.steps) {
        chain += 1;
        if (step.filter.kind == dl::ResolvedFilter::Kind::kClass) {
          chain += radius(step.filter.name);
        }
      }
      best = std::max(best, chain);
    }
    visiting.erase(cls);
    return best;
  };
  return radius(query_class);
}

Status ViewCatalog::RefreshIncremental(
    const std::vector<db::ObjectId>& touched) {
  for (View& view : views_) {
    // Collect every object whose membership may have changed: reachable
    // from a touched object within `radius` steps over any attribute, in
    // either direction (paths may use inverses).
    std::unordered_set<db::ObjectId> affected(touched.begin(), touched.end());
    std::deque<std::pair<db::ObjectId, size_t>> queue;
    for (db::ObjectId o : touched) queue.emplace_back(o, 0);
    while (!queue.empty()) {
      auto [o, depth] = queue.front();
      queue.pop_front();
      if (depth >= view.radius) continue;
      for (const dl::AttributeDef& attr : db_->model().attributes()) {
        for (bool inverted : {false, true}) {
          for (db::ObjectId next :
               db_->AttrValues(o, ql::Attr{attr.name, inverted})) {
            if (affected.insert(next).second) {
              queue.emplace_back(next, depth + 1);
            }
          }
        }
      }
    }
    for (db::ObjectId o : affected) {
      bool in;
      if (view.concept_only) {
        in = db::ConceptHolds(*db_, translator_->terms(), view.concept_id,
                              o);
      } else {
        OODB_ASSIGN_OR_RETURN(in, evaluator_.IsAnswer(view.name, o));
      }
      auto pos = std::lower_bound(view.extent.begin(), view.extent.end(), o);
      bool present = pos != view.extent.end() && *pos == o;
      if (in && !present) {
        view.extent.insert(pos, o);
      } else if (!in && present) {
        view.extent.erase(pos);
      }
    }
    view.materialized_version = db_->version();
    ++view.refresh_count;
  }
  return Status::Ok();
}

const View* ViewCatalog::Find(Symbol name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &views_[it->second];
}

Optimizer::Optimizer(db::Database* database, ViewCatalog* catalog,
                     const schema::Schema& sigma, dl::Translator* translator)
    : db_(database),
      catalog_(catalog),
      translator_(translator),
      checker_(sigma),
      evaluator_(*database) {}

Result<QueryPlan> Optimizer::ChoosePlan(Symbol query_class) {
  OODB_ASSIGN_OR_RETURN(ql::ConceptId query_concept,
                        translator_->QueryConcept(query_class));
  QueryPlan plan;
  // Base-scan cost: smallest superclass extent (mirrors the evaluator).
  size_t base_pool = db_->num_objects();
  for (Symbol super : db_->model().SuperClosure(query_class)) {
    const dl::ClassDef* def = db_->model().FindClass(super);
    if (def == nullptr || def->is_query || super == db_->model().object_class) {
      continue;
    }
    base_pool = std::min(base_pool, db_->ClassExtent(super).size());
  }
  plan.pool_size = base_pool;
  plan.explanation = StrCat("base scan over ", base_pool, " candidates");

  // One completion decides the query against the whole catalog
  // (CompletionEngine::RunBatch).
  std::vector<ql::ConceptId> view_concepts;
  for (const View& view : catalog_->views()) {
    view_concepts.push_back(view.concept_id);
  }
  std::vector<bool> verdicts;
  if (!view_concepts.empty()) {
    plan.subsumption_checks = 1;
    OODB_ASSIGN_OR_RETURN(verdicts,
                          checker_.SubsumesBatch(query_concept,
                                                 view_concepts));
  }
  // Every subsuming view's extent is a superset of the answers, so the
  // intersection of all of them is the smallest view-derived pool.
  std::vector<db::ObjectId> pool;
  bool have_pool = false;
  for (size_t i = 0; i < catalog_->views().size(); ++i) {
    const View& view = catalog_->views()[i];
    if (!verdicts[i]) continue;
    if (!have_pool) {
      pool = view.extent;
      have_pool = true;
    } else {
      std::vector<db::ObjectId> merged;
      std::set_intersection(pool.begin(), pool.end(), view.extent.begin(),
                            view.extent.end(), std::back_inserter(merged));
      pool = std::move(merged);
    }
    plan.views_used.push_back(view.name);
  }
  // Intersecting (ties prefer views: their candidates are pre-filtered by
  // the subsuming conditions).
  if (have_pool && pool.size() <= plan.pool_size) {
    plan.uses_view = true;
    plan.view = plan.views_used[0];
    plan.pool_size = pool.size();
    plan.explanation = StrCat(
        "filter ", plan.views_used.size() == 1 ? "materialized view"
                                               : "view intersection",
        " '",
        StrJoinMapped(plan.views_used, " ⊓ ",
                      [&](Symbol s) { return db_->symbols().Name(s); }),
        "' (", pool.size(), " candidates, base scan was ", base_pool, ")");
  } else {
    plan.views_used.clear();
  }
  return plan;
}

// Intersection of the used views' (sorted) extents.
std::vector<db::ObjectId> Optimizer::PlanPool(const QueryPlan& plan) const {
  std::vector<db::ObjectId> pool;
  bool first = true;
  for (Symbol name : plan.views_used) {
    const View* view = catalog_->Find(name);
    if (first) {
      pool = view->extent;
      first = false;
    } else {
      std::vector<db::ObjectId> merged;
      std::set_intersection(pool.begin(), pool.end(), view->extent.begin(),
                            view->extent.end(), std::back_inserter(merged));
      pool = std::move(merged);
    }
  }
  return pool;
}

Result<std::vector<db::ObjectId>> Optimizer::Execute(Symbol query_class,
                                                     QueryPlan* plan_out,
                                                     db::EvalStats* stats) {
  OODB_RETURN_IF_ERROR(catalog_->RefreshAll());
  OODB_ASSIGN_OR_RETURN(QueryPlan plan, ChoosePlan(query_class));

  // Residual filtering (Sect. 6's "minimal filter query"): for a deeply
  // structural query Q answered through views V₁…Vₖ, compute R with
  // V₁ ⊓ … ⊓ Vₖ ⊓ R ≡_Σ Q and test pool candidates against R only.
  // Requires a legal state (the equivalence is w.r.t. Σ-interpretations).
  if (plan.uses_view &&
      dl::IsDeeplyStructural(db_->model(), query_class)) {
    OODB_ASSIGN_OR_RETURN(ql::ConceptId query_concept,
                          translator_->QueryConcept(query_class));
    ql::TermFactory& terms = checker_.sigma().terms();
    std::vector<ql::ConceptId> used_concepts;
    for (Symbol name : plan.views_used) {
      used_concepts.push_back(catalog_->Find(name)->concept_id);
    }
    OODB_ASSIGN_OR_RETURN(
        std::optional<ql::ConceptId> residual,
        calculus::ResidualFilter(checker_, &terms, query_concept,
                                 terms.AndAll(used_concepts)));
    if (residual.has_value()) {
      plan.uses_residual = true;
      plan.residual = *residual;
      plan.explanation +=
          StrCat("; residual filter: ",
                 ql::ConceptToString(terms, *residual));
      std::vector<db::ObjectId> pool = PlanPool(plan);
      std::vector<db::ObjectId> answers;
      for (db::ObjectId o : pool) {
        if (db::ConceptHolds(*db_, terms, *residual, o)) {
          answers.push_back(o);
        }
      }
      if (stats != nullptr) {
        stats->candidates_examined += pool.size();
        stats->answers = answers.size();
      }
      if (plan_out != nullptr) *plan_out = plan;
      return answers;
    }
  }

  Result<std::vector<db::ObjectId>> answers =
      plan.uses_view
          ? evaluator_.EvaluateOver(query_class, PlanPool(plan), stats)
          : evaluator_.Evaluate(query_class, stats);
  if (plan_out != nullptr) *plan_out = plan;
  return answers;
}

}  // namespace oodb::views
