#include "calculus/explain.h"

#include "base/strings.h"
#include "calculus/engine.h"
#include "interp/eval.h"
#include "ql/print.h"

namespace oodb::calculus {

std::string RenderCountermodel(const schema::Schema& sigma,
                               const CanonicalModel& model,
                               const interp::Signature& sig,
                               ql::ConceptId c, ql::ConceptId d) {
  const ql::TermFactory& terms = sigma.terms();
  const interp::Interpretation& interp = model.interpretation;
  std::string out;
  out += StrCat("countermodel (", interp.domain_size(),
                " elements; e", model.u_element,
                " is the universal element u):\n");
  for (size_t e = 0; e < interp.domain_size(); ++e) {
    int x = static_cast<int>(e);
    std::vector<std::string> concepts;
    if (interp.IsUniversal(x)) {
      concepts.push_back("⟨everything⟩");
    } else {
      for (Symbol a : sig.concepts) {
        if (interp.InConcept(a, x)) {
          concepts.push_back(terms.symbols().Name(a));
        }
      }
    }
    out += StrCat("  e", e, ": {", StrJoin(concepts, ", "), "}",
                  x == model.goal_element ? "   ← the witness object o" : "",
                  "\n");
  }
  for (Symbol p : sig.attrs) {
    for (size_t s = 0; s < interp.domain_size(); ++s) {
      for (int t : interp.Successors(p, static_cast<int>(s))) {
        if (interp.IsUniversal(static_cast<int>(s))) continue;
        out += StrCat("  e", s, " —", terms.symbols().Name(p), "→ e", t,
                      "\n");
      }
    }
  }
  out += StrCat("  o = e", model.goal_element, " satisfies  ",
                ql::ConceptToString(terms, c), "\n");
  out += StrCat("  o = e", model.goal_element, " violates   ",
                ql::ConceptToString(terms, d), "\n");
  return out;
}

Result<Explanation> ExplainSubsumption(const schema::Schema& sigma,
                                       ql::ConceptId c, ql::ConceptId d) {
  CompletionEngine::Options options;
  options.record_trace = true;
  CompletionEngine engine(sigma, options);
  OODB_RETURN_IF_ERROR(engine.Run(c, d));

  const ql::TermFactory& terms = sigma.terms();
  Explanation explanation;
  explanation.subsumed = engine.clash() || engine.GoalFactHolds();

  if (engine.clash()) {
    explanation.text = StrCat(
        ql::ConceptToString(terms, c), " is Σ-unsatisfiable (",
        engine.clash_reason(),
        "), hence subsumed by every concept (Thm. 4.7).\n");
    return explanation;
  }

  if (explanation.subsumed) {
    std::string out = StrCat("derivation of o:D (", engine.trace().size(),
                             " rule applications):\n");
    for (const TraceEvent& event : engine.trace()) {
      out += StrCat("  [", RuleName(event.rule), "] ", event.text, "\n");
    }
    explanation.text = std::move(out);
    return explanation;
  }

  OODB_ASSIGN_OR_RETURN(CanonicalModel model,
                        BuildCanonicalModel(engine, sigma));
  interp::Signature sig = interp::CollectSignature(terms, {c, d}, &sigma);
  explanation.text = RenderCountermodel(sigma, model, sig, c, d);
  return explanation;
}

}  // namespace oodb::calculus
