#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "oodb::oodb_base" for configuration "RelWithDebInfo"
set_property(TARGET oodb::oodb_base APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(oodb::oodb_base PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/liboodb_base.a"
  )

list(APPEND _cmake_import_check_targets oodb::oodb_base )
list(APPEND _cmake_import_check_files_for_oodb::oodb_base "${_IMPORT_PREFIX}/lib/liboodb_base.a" )

# Import target "oodb::oodb_ql" for configuration "RelWithDebInfo"
set_property(TARGET oodb::oodb_ql APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(oodb::oodb_ql PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/liboodb_ql.a"
  )

list(APPEND _cmake_import_check_targets oodb::oodb_ql )
list(APPEND _cmake_import_check_files_for_oodb::oodb_ql "${_IMPORT_PREFIX}/lib/liboodb_ql.a" )

# Import target "oodb::oodb_schema" for configuration "RelWithDebInfo"
set_property(TARGET oodb::oodb_schema APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(oodb::oodb_schema PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/liboodb_schema.a"
  )

list(APPEND _cmake_import_check_targets oodb::oodb_schema )
list(APPEND _cmake_import_check_files_for_oodb::oodb_schema "${_IMPORT_PREFIX}/lib/liboodb_schema.a" )

# Import target "oodb::oodb_interp" for configuration "RelWithDebInfo"
set_property(TARGET oodb::oodb_interp APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(oodb::oodb_interp PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/liboodb_interp.a"
  )

list(APPEND _cmake_import_check_targets oodb::oodb_interp )
list(APPEND _cmake_import_check_files_for_oodb::oodb_interp "${_IMPORT_PREFIX}/lib/liboodb_interp.a" )

# Import target "oodb::oodb_calculus" for configuration "RelWithDebInfo"
set_property(TARGET oodb::oodb_calculus APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(oodb::oodb_calculus PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/liboodb_calculus.a"
  )

list(APPEND _cmake_import_check_targets oodb::oodb_calculus )
list(APPEND _cmake_import_check_files_for_oodb::oodb_calculus "${_IMPORT_PREFIX}/lib/liboodb_calculus.a" )

# Import target "oodb::oodb_cq" for configuration "RelWithDebInfo"
set_property(TARGET oodb::oodb_cq APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(oodb::oodb_cq PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/liboodb_cq.a"
  )

list(APPEND _cmake_import_check_targets oodb::oodb_cq )
list(APPEND _cmake_import_check_files_for_oodb::oodb_cq "${_IMPORT_PREFIX}/lib/liboodb_cq.a" )

# Import target "oodb::oodb_dl" for configuration "RelWithDebInfo"
set_property(TARGET oodb::oodb_dl APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(oodb::oodb_dl PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/liboodb_dl.a"
  )

list(APPEND _cmake_import_check_targets oodb::oodb_dl )
list(APPEND _cmake_import_check_files_for_oodb::oodb_dl "${_IMPORT_PREFIX}/lib/liboodb_dl.a" )

# Import target "oodb::oodb_db" for configuration "RelWithDebInfo"
set_property(TARGET oodb::oodb_db APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(oodb::oodb_db PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/liboodb_db.a"
  )

list(APPEND _cmake_import_check_targets oodb::oodb_db )
list(APPEND _cmake_import_check_files_for_oodb::oodb_db "${_IMPORT_PREFIX}/lib/liboodb_db.a" )

# Import target "oodb::oodb_views" for configuration "RelWithDebInfo"
set_property(TARGET oodb::oodb_views APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(oodb::oodb_views PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/liboodb_views.a"
  )

list(APPEND _cmake_import_check_targets oodb::oodb_views )
list(APPEND _cmake_import_check_files_for_oodb::oodb_views "${_IMPORT_PREFIX}/lib/liboodb_views.a" )

# Import target "oodb::oodb_ext" for configuration "RelWithDebInfo"
set_property(TARGET oodb::oodb_ext APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(oodb::oodb_ext PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/liboodb_ext.a"
  )

list(APPEND _cmake_import_check_targets oodb::oodb_ext )
list(APPEND _cmake_import_check_files_for_oodb::oodb_ext "${_IMPORT_PREFIX}/lib/liboodb_ext.a" )

# Import target "oodb::oodb_gen" for configuration "RelWithDebInfo"
set_property(TARGET oodb::oodb_gen APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(oodb::oodb_gen PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/liboodb_gen.a"
  )

list(APPEND _cmake_import_check_targets oodb::oodb_gen )
list(APPEND _cmake_import_check_files_for_oodb::oodb_gen "${_IMPORT_PREFIX}/lib/liboodb_gen.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
