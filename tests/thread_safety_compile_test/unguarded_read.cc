// MUST NOT COMPILE under -Werror=thread-safety: reading a GUARDED_BY
// member without holding its mutex.
#include "base/sync.h"

namespace {

class Counter {
 public:
  int Get() const { return value_; }  // BAD: mu_ not held

 private:
  mutable oodb::base::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  return c.Get();
}
