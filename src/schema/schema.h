// SL schemas (paper Sect. 3.1): finite sets of axioms
//   A ⊑ D     with D ::= A' | ∀P.A' | ∃P | (≤1 P)
//   P ⊑ A₁×A₂ (attribute typing: domain × range)
// indexed for the schema rules S1–S5 of the calculus.
#ifndef OODB_SCHEMA_SCHEMA_H_
#define OODB_SCHEMA_SCHEMA_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/hash.h"
#include "base/status.h"
#include "base/symbol.h"
#include "ql/term.h"
#include "ql/term_factory.h"

namespace oodb::schema {

// A ⊑ D with D an SL concept from the shared term factory.
struct InclusionAxiom {
  Symbol lhs;
  ql::ConceptId rhs;
};

// P ⊑ A₁ × A₂.
struct TypingAxiom {
  Symbol attr;
  Symbol domain;
  Symbol range;
};

// An SL schema Σ. Axioms are validated on insertion: the right-hand side
// of an inclusion must be a legal SL concept (conjunctions are split into
// separate axioms as a convenience; they are equivalent).
class Schema {
 public:
  // `terms` must outlive the schema.
  explicit Schema(ql::TermFactory* terms);

  ql::TermFactory& terms() const { return *terms_; }

  // --- Construction -----------------------------------------------------

  // Adds A ⊑ D. D may be a conjunction of SL forms; it is split.
  // Fails with kInvalidArgument if D contains a non-SL construct
  // (singletons, inverses, agreements, paths of length > 1, qualified
  // existentials): exactly the extensions Sect. 4.4 proves intractable.
  Status AddInclusion(Symbol a, ql::ConceptId d);

  // Adds P ⊑ A₁×A₂.
  Status AddTyping(Symbol attr, Symbol domain, Symbol range);

  // Convenience builders for the four SL axiom shapes.
  Status AddIsA(Symbol a, Symbol super);                        // A ⊑ A'
  Status AddValueRestriction(Symbol a, Symbol attr, Symbol range_class);
                                                                // A ⊑ ∀P.A'
  Status AddNecessary(Symbol a, Symbol attr);                   // A ⊑ ∃P
  Status AddFunctional(Symbol a, Symbol attr);                  // A ⊑ (≤1 P)

  // --- Indexed access (used by calculus rules) ---------------------------

  // S1: all A₂ with A₁ ⊑ A₂ ∈ Σ (direct, not transitive).
  const std::vector<Symbol>& SuperPrimitives(Symbol a) const;

  // S2: all A₂ with A₁ ⊑ ∀P.A₂ ∈ Σ.
  const std::vector<Symbol>& ValueRestrictions(Symbol a, Symbol attr) const;

  // S2 (semi-naive trigger from the membership side): all (P, A₂) with
  // A₁ ⊑ ∀P.A₂ ∈ Σ.
  const std::vector<std::pair<Symbol, Symbol>>& ValueRestrictionsOf(
      Symbol a) const;

  // S3: all typing axioms for attribute P.
  const std::vector<TypingAxiom>& TypingsOf(Symbol attr) const;

  // S4: whether A ⊑ (≤1 P) ∈ Σ.
  bool IsFunctionalFor(Symbol a, Symbol attr) const;

  // S5 / canonical interpretation: whether A ⊑ ∃P ∈ Σ.
  bool IsNecessaryFor(Symbol a, Symbol attr) const;

  // All P with A ⊑ ∃P ∈ Σ (canonical interpretation construction).
  const std::vector<Symbol>& NecessaryAttrs(Symbol a) const;

  // All P with A ⊑ (≤1 P) ∈ Σ (rule S4).
  const std::vector<Symbol>& FunctionalAttrs(Symbol a) const;

  // --- Whole-schema access ------------------------------------------------

  const std::vector<InclusionAxiom>& inclusions() const { return inclusions_; }
  const std::vector<TypingAxiom>& typings() const { return typings_; }

  // Every primitive concept mentioned on either side of any axiom.
  std::vector<Symbol> MentionedConcepts() const;
  // Every primitive attribute mentioned in any axiom.
  std::vector<Symbol> MentionedAttrs() const;

  // Reflexive-transitive closure of the A ⊑ A' relation from `a`.
  std::vector<Symbol> SuperClassesTransitive(Symbol a) const;

  // Syntactic size of Σ (for complexity accounting).
  size_t Size() const;

 private:
  Status AddSimpleInclusion(Symbol a, ql::ConceptId d);

  ql::TermFactory* terms_;
  std::vector<InclusionAxiom> inclusions_;
  std::vector<TypingAxiom> typings_;

  std::unordered_map<Symbol, std::vector<Symbol>> supers_;
  std::unordered_map<size_t, std::vector<Symbol>> value_restrictions_;
  std::unordered_map<Symbol, std::vector<std::pair<Symbol, Symbol>>>
      value_restrictions_by_class_;
  std::unordered_map<Symbol, std::vector<TypingAxiom>> typings_by_attr_;
  std::unordered_set<size_t> functional_;
  std::unordered_set<size_t> necessary_;
  std::unordered_map<Symbol, std::vector<Symbol>> necessary_attrs_;
  std::unordered_map<Symbol, std::vector<Symbol>> functional_attrs_;
  std::unordered_set<size_t> seen_axioms_;  // dedup of (lhs, rhs) pairs
};

}  // namespace oodb::schema

#endif  // OODB_SCHEMA_SCHEMA_H_
