file(REMOVE_RECURSE
  "CMakeFiles/oodbsub.dir/oodbsub.cc.o"
  "CMakeFiles/oodbsub.dir/oodbsub.cc.o.d"
  "oodbsub"
  "oodbsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oodbsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
