// Pretty printing of SL/QL terms, using the paper's notation in UTF-8
// (⊤, ⊓, ∃, ∀, ≐, ε) with `^-1` for attribute inverses.
#ifndef OODB_QL_PRINT_H_
#define OODB_QL_PRINT_H_

#include <string>

#include "ql/term.h"
#include "ql/term_factory.h"

namespace oodb::ql {

// "name" or "name^-1".
std::string AttrToString(const TermFactory& f, const Attr& attr);

// "(a: C)(b^-1: D)" — restrictions with ⊤ filters print as "(a: ⊤)";
// the empty path prints as "ε".
std::string PathToString(const TermFactory& f, PathId path);

// Paper-style rendering, e.g.
// "Male ⊓ Patient ⊓ ∃(consults: Female ⊓ Doctor)(skilled_in: ⊤) ≐ ε".
std::string ConceptToString(const TermFactory& f, ConceptId id);

}  // namespace oodb::ql

#endif  // OODB_QL_PRINT_H_
