file(REMOVE_RECURSE
  "CMakeFiles/oodb_calculus.dir/canonical.cc.o"
  "CMakeFiles/oodb_calculus.dir/canonical.cc.o.d"
  "CMakeFiles/oodb_calculus.dir/constraint.cc.o"
  "CMakeFiles/oodb_calculus.dir/constraint.cc.o.d"
  "CMakeFiles/oodb_calculus.dir/engine.cc.o"
  "CMakeFiles/oodb_calculus.dir/engine.cc.o.d"
  "CMakeFiles/oodb_calculus.dir/explain.cc.o"
  "CMakeFiles/oodb_calculus.dir/explain.cc.o.d"
  "CMakeFiles/oodb_calculus.dir/services.cc.o"
  "CMakeFiles/oodb_calculus.dir/services.cc.o.d"
  "CMakeFiles/oodb_calculus.dir/subsumption.cc.o"
  "CMakeFiles/oodb_calculus.dir/subsumption.cc.o.d"
  "CMakeFiles/oodb_calculus.dir/trace.cc.o"
  "CMakeFiles/oodb_calculus.dir/trace.cc.o.d"
  "liboodb_calculus.a"
  "liboodb_calculus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oodb_calculus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
