# Empty dependencies file for oodb_calculus.
# This may be replaced when dependencies are built.
