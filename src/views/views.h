// Materialized views and the subsumption-based query optimizer — the
// application the paper builds the calculus for (Sect. 1, 3.2, 6).
//
// Views are structural query classes (no constraint clause, no path
// variables) whose answers are stored. An incoming query is checked
// against the catalog with the polynomial subsumption procedure; if some
// view subsumes it, the optimizer evaluates the query by filtering the
// view's stored extent instead of scanning a base-class extent.
#ifndef OODB_VIEWS_VIEWS_H_
#define OODB_VIEWS_VIEWS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "base/symbol.h"
#include "calculus/subsumption.h"
#include "db/database.h"
#include "db/evaluator.h"
#include "dl/model.h"
#include "dl/translate.h"
#include "schema/schema.h"

namespace oodb::views {

struct View {
  Symbol name;               // the defining query class (or a fresh name)
  ql::ConceptId concept_id;  // its (complete) QL translation
  std::vector<db::ObjectId> extent;  // sorted materialized answers
  uint64_t materialized_version = 0;
  size_t refresh_count = 0;
  // Dependency radius: view membership of o depends only on objects
  // within this many attribute steps of o (for incremental maintenance).
  size_t radius = 0;
  // True for synthesized views defined directly by a QL concept (no DL
  // query class): materialized and maintained via ConceptHolds.
  bool concept_only = false;
};

class ViewCatalog {
 public:
  // All pointees must outlive the catalog.
  ViewCatalog(db::Database* database, dl::Translator* translator);

  // Registers and materializes a view. Fails (kFailedPrecondition) if the
  // query class is not structural: a view must be captured completely by
  // its concept for subsumption-based reuse to be sound (paper Sect. 3).
  Status DefineView(Symbol query_class);

  // Piggyback materialization (paper Sect. 6: "the first evaluation of
  // the view creates no significant overhead since it is part of the
  // evaluation of the original query"): registers the view using answers
  // the caller just computed at the CURRENT database version, skipping
  // the re-evaluation DefineView would perform. Same structural
  // precondition; `answers` must be sorted.
  Status DefineViewFromAnswers(Symbol query_class,
                               std::vector<db::ObjectId> answers);

  // Removes a view from the catalog.
  Status DropView(Symbol query_class);

  // Defines a *synthesized* view directly from a QL concept under a fresh
  // name — e.g. a CommonSubsumer of a query workload (Sect. 6's shared
  // object sets). The concept must be pure QL and may not contain
  // singletons that do not name current database objects (skolems from
  // path variables would silently empty the extent). Materialized and
  // maintained by direct concept evaluation.
  Status DefineConceptView(Symbol name, ql::ConceptId concept_id);

  // Re-materializes every view that is stale w.r.t. the database version.
  Status RefreshAll();

  // Incremental maintenance: re-checks membership only for objects within
  // each view's dependency radius of the `touched` objects. Equivalent to
  // RefreshAll for updates that touched exactly those objects.
  Status RefreshIncremental(const std::vector<db::ObjectId>& touched);

  const View* Find(Symbol name) const;
  const std::vector<View>& views() const { return views_; }

 private:
  Status Materialize(View& view);
  size_t RadiusOf(Symbol query_class) const;

  db::Database* db_;
  dl::Translator* translator_;
  db::QueryEvaluator evaluator_;
  std::vector<View> views_;
  std::unordered_map<Symbol, size_t> index_;
};

// The chosen evaluation strategy for one query.
struct QueryPlan {
  bool uses_view = false;
  // The subsuming views whose extents are intersected as the candidate
  // pool (every subsuming view only shrinks it). `view` is the first.
  std::vector<Symbol> views_used;
  Symbol view;          // valid iff uses_view
  size_t pool_size = 0; // candidates the plan will examine
  // Number of subsumption checks performed while planning (batch
  // completion: 1 when the catalog is non-empty).
  size_t subsumption_checks = 0;
  // Sect. 6 "minimal filter query": when the query is deeply structural
  // and views are used, candidates are tested against this residual
  // concept R (with V₁ ⊓ … ⊓ Vₖ ⊓ R ≡_Σ Q) instead of the full query.
  bool uses_residual = false;
  ql::ConceptId residual = ql::kInvalidConcept;
  std::string explanation;
};

class Optimizer {
 public:
  // All pointees must outlive the optimizer. `sigma` must be the SL
  // translation of the database's schema.
  Optimizer(db::Database* database, ViewCatalog* catalog,
            const schema::Schema& sigma, dl::Translator* translator);

  // Chooses the cheapest plan: the smallest materialized extent among the
  // views that Σ-subsume the query, else the base scan.
  Result<QueryPlan> ChoosePlan(Symbol query_class);

  // Plans and executes; refreshes stale views first (a view must be up to
  // date before its extent may replace the search space).
  Result<std::vector<db::ObjectId>> Execute(Symbol query_class,
                                            QueryPlan* plan_out = nullptr,
                                            db::EvalStats* stats = nullptr);

 private:
  std::vector<db::ObjectId> PlanPool(const QueryPlan& plan) const;

  db::Database* db_;
  ViewCatalog* catalog_;
  dl::Translator* translator_;
  calculus::SubsumptionChecker checker_;
  db::QueryEvaluator evaluator_;
};

}  // namespace oodb::views

#endif  // OODB_VIEWS_VIEWS_H_
