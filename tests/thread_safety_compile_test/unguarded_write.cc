// MUST NOT COMPILE under -Werror=thread-safety: writing a GUARDED_BY
// member without holding its mutex.
#include "base/sync.h"

namespace {

class Counter {
 public:
  void Bump() { ++value_; }  // BAD: mu_ not held

 private:
  oodb::base::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return 0;
}
