// MUST COMPILE cleanly under -Werror=thread-safety: disciplined use of
// every wrapper. A failure here means the harness flags are broken and
// the negative tests above prove nothing.
#include "base/sync.h"

namespace {

class Disciplined {
 public:
  void Bump() {
    oodb::base::MutexLock lock(&mu_);
    ++value_;
    cv_.NotifyAll();
  }

  void WaitForPositive() {
    oodb::base::MutexLock lock(&mu_);
    while (value_ <= 0) cv_.Wait(mu_);
  }

  int Snapshot() const {
    oodb::base::ReaderLock lock(&smu_);
    return shared_value_;
  }

  void Publish(int v) {
    oodb::base::WriterLock lock(&smu_);
    shared_value_ = v;
  }

  int HandOverHand() {
    mu_.Lock();
    int v = value_;
    mu_.Unlock();
    return v;
  }

 private:
  mutable oodb::base::Mutex mu_;
  oodb::base::CondVar cv_;
  int value_ GUARDED_BY(mu_) = 0;
  mutable oodb::base::SharedMutex smu_;
  int shared_value_ GUARDED_BY(smu_) = 0;
};

}  // namespace

int main() {
  Disciplined d;
  d.Bump();
  d.WaitForPositive();
  d.Publish(d.HandOverHand());
  return d.Snapshot();
}
