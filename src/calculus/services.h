// Higher-level reasoning services built on the subsumption checker:
// concept minimization (the semantic-optimization use of containment the
// related work pursues: remove redundant conjuncts) and classification of
// named concepts into a subsumption DAG (the classic DL reasoner service;
// the view catalog uses it to find most-specific subsuming views).
#ifndef OODB_CALCULUS_SERVICES_H_
#define OODB_CALCULUS_SERVICES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "calculus/subsumption.h"
#include "ql/term.h"

namespace oodb::calculus {

// Removes parts of `c` that are redundant under Σ while preserving
// Σ-equivalence:
//   * conjuncts implied by the remaining conjuncts
//   * path filters implied by the rest of the concept (weakened to ⊤)
// Runs polynomially many subsumption checks. The result is Σ-equivalent
// to the input (verified internally; on any anomaly the input is
// returned unchanged).
Result<ql::ConceptId> MinimizeConcept(const SubsumptionChecker& checker,
                                      ql::TermFactory* terms,
                                      ql::ConceptId c);

// The paper's first open problem (Sect. 6): "We are interested in a
// minimal filter query which intersected with the view results exactly in
// the subsumed query."
//
// Given Q ⊑_Σ V, returns a minimal-by-greedy-deletion subset R of Q's
// conjuncts with V ⊓ R ≡_Σ Q (always exists: R = Q works). An optimizer
// can then test view candidates against R alone instead of all of Q.
// Returns nullopt if Q ⋢_Σ V.
Result<std::optional<ql::ConceptId>> ResidualFilter(
    const SubsumptionChecker& checker, ql::TermFactory* terms,
    ql::ConceptId q, ql::ConceptId v);

// A common subsumer of a query workload: S with Cᵢ ⊑_Σ S for every input
// (not necessarily the least one). Built from the conjuncts of the inputs
// that subsume every input, then Σ-minimized. The paper's cooperative
// scenario (Sect. 6: users sharing object sets) materializes such an S as
// one view serving the whole workload; if nothing is shared the result
// degrades to ⊤ (not worth materializing — callers should check).
Result<ql::ConceptId> CommonSubsumer(const SubsumptionChecker& checker,
                                     ql::TermFactory* terms,
                                     const std::vector<ql::ConceptId>& cs);

// Classifies named concepts into a subsumption hierarchy.
//
// The hierarchy is maintained INCREMENTALLY: internally the classifier
// keeps a DAG of Σ-equivalence classes whose edges are the transitive
// reduction of the strict subsumption order on the classes present, and
// every mutation (Insert, Remove, or flushing pending Add()s via
// Classify()) repairs that DAG locally instead of reclassifying. Because
// the transitive reduction of a finite partial order is unique, the
// resulting per-name Parents/Children/Equivalents lists are identical to
// what a from-scratch classification of the surviving names (in names()
// order) would produce — tests/incremental_classify_test.cc pins this
// against a fresh oracle across randomized Insert/Remove interleavings.
class Classifier {
 public:
  // Search strategy used when a concept is inserted into the DAG. Both
  // modes produce the identical DAG (pinned by
  // tests/classify_traversal_test.cc); they differ only in how many
  // subsumption checks they issue.
  enum class Mode {
    // Top search (most-general subsumers first) and bottom search
    // (most-specific subsumees, restricted to the down-set of the found
    // parents), pruning by transitivity in both directions. On
    // hierarchy-rich catalogs this skips the bulk of the n·(n-1) pairs.
    kEnhancedTraversal,
    // Exhaustive insertion: checks every existing class in both
    // directions, no pruning. The reference strategy; also the right
    // choice for flat catalogs, where traversal cannot prune.
    kPairwise,
  };

  // Cumulative check-accounting over the classifier's lifetime.
  // `concepts` is the number of names currently classified;
  // `pairwise_checks` is what a from-scratch full matrix over the current
  // names would issue (n·(n-1)); `checks_performed` counts the Subsumes()
  // calls actually made by every mutation so far (the checker's own
  // memo/pre-filter savings are a separate layer, see
  // SubsumptionChecker::perf_stats). `checks_avoided` is the clamped
  // difference — after many removals the cumulative count can exceed the
  // matrix bound, in which case it reports 0.
  struct ClassifyStats {
    size_t concepts = 0;
    size_t pairwise_checks = 0;
    size_t checks_performed = 0;
    size_t checks_avoided = 0;
  };

  // Accounting of the single most recent DAG mutation (one insertion or
  // one removal). `classes_before` is the number of equivalence classes
  // the operation searched; `checks_performed` the subsumption checks it
  // issued (always 0 for Remove — removal repairs by reachability alone);
  // `edges_added` the transitive-reduction edges spliced in.
  struct OpStats {
    size_t classes_before = 0;
    size_t checks_performed = 0;
    size_t edges_added = 0;
  };

  explicit Classifier(const SubsumptionChecker& checker,
                      Mode mode = Mode::kEnhancedTraversal)
      : checker_(checker), mode_(mode) {}

  // Adds a named concept without classifying it yet (names must be
  // unique). Pending names join the DAG on the next Classify() or
  // Insert(); until then their Parents/Children/Equivalents are empty.
  Status Add(Symbol name, ql::ConceptId concept_id);

  // Classifies every pending Add() into the DAG, in insertion order.
  // Idempotent when nothing is pending. Re-running after further Add()s
  // extends the existing DAG incrementally; the result is identical to a
  // fresh classification of all names (uniqueness of the transitive
  // reduction), which tests/incremental_classify_test.cc verifies.
  Status Classify();

  // Add() + Classify() in one step: classifies `concept_id` (and any
  // other pending names) into the DAG immediately.
  Status Insert(Symbol name, ql::ConceptId concept_id);

  // Removes a name and repairs the DAG locally: if its equivalence class
  // has other members the class survives; otherwise the class is deleted
  // and each of its direct children is reconnected to exactly those
  // direct parents it cannot already reach, keeping the edge set the
  // transitive reduction of the remaining order. No subsumption checks
  // are issued. Errors with kNotFound for unknown names.
  Status Remove(Symbol name);

  // Direct (transitively reduced) super-concepts of `name`.
  std::vector<Symbol> Parents(Symbol name) const;
  // Direct sub-concepts.
  std::vector<Symbol> Children(Symbol name) const;
  // Names whose concepts are Σ-equivalent to `name` (excluding itself).
  std::vector<Symbol> Equivalents(Symbol name) const;
  // Every added name whose concept subsumes `concept_id`, most specific
  // first (parents follow children).
  Result<std::vector<Symbol>> SubsumersOf(ql::ConceptId concept_id) const;

  bool Contains(Symbol name) const { return nodes_.count(name) > 0; }
  // The concept registered for `name`, or ql::kInvalidConcept.
  ql::ConceptId ConceptOf(Symbol name) const;

  const std::vector<Symbol>& names() const { return names_; }
  Mode mode() const { return mode_; }
  const ClassifyStats& classify_stats() const { return stats_; }
  const OpStats& last_op_stats() const { return last_op_; }
  // Number of Σ-equivalence classes currently in the DAG.
  size_t num_classes() const { return live_classes_; }

  // Multi-line rendering of the hierarchy.
  std::string ToString(const SymbolTable& symbols) const;

 private:
  struct Node {
    ql::ConceptId concept_id = ql::kInvalidConcept;
    uint64_t order = 0;  // monotone Add() sequence number
    std::vector<Symbol> parents;
    std::vector<Symbol> children;
    std::vector<Symbol> equivalents;
  };
  // A Σ-equivalence class in the persistent DAG. Slots of removed
  // classes stay in `classes_` as dead tombstones (alive == false) and
  // are recycled through `free_classes_`, so indices held in edge lists
  // remain stable.
  struct Class {
    std::vector<Symbol> members;  // in Add() order
    ql::ConceptId rep = ql::kInvalidConcept;
    std::vector<size_t> parents;   // direct super-classes
    std::vector<size_t> children;  // direct sub-classes
    bool alive = false;
  };

  // Classifies one name into the DAG (top/bottom search + splice).
  Status InsertIntoDag(Symbol name);
  // Live classes, parents before children.
  std::vector<size_t> TopoOrder() const;
  // Rebuilds the per-name lists of every member of class `k` (and only
  // those) from the class adjacency.
  void RefreshClassMembers(size_t k);
  void RefreshAggregateStats();

  const SubsumptionChecker& checker_;
  Mode mode_;
  ClassifyStats stats_;
  OpStats last_op_;
  std::vector<Symbol> names_;
  std::unordered_map<Symbol, Node> nodes_;
  std::vector<Class> classes_;
  std::vector<size_t> free_classes_;
  std::unordered_map<Symbol, size_t> class_of_;
  size_t live_classes_ = 0;
  uint64_t next_order_ = 0;
};

}  // namespace oodb::calculus

#endif  // OODB_CALCULUS_SERVICES_H_
