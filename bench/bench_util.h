// Shared helpers for the experiment binaries: wall-clock timing, aligned
// table printing, and growth-rate estimation.
#ifndef OODB_BENCH_BENCH_UTIL_H_
#define OODB_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace oodb::bench {

// Microseconds spent in `fn` (single shot; callers loop if needed).
inline double TimeUs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(end - start).count();
}

// Runs `fn` repeatedly until ~20ms elapsed, returns mean microseconds.
inline double TimeUsAveraged(const std::function<void()>& fn) {
  double total = 0;
  int runs = 0;
  while (total < 20000.0 && runs < 1000) {
    total += TimeUs(fn);
    ++runs;
  }
  return total / runs;
}

// Fixed-width table printing.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("  ");
      for (size_t i = 0; i < row.size(); ++i) {
        std::printf("%-*s  ", static_cast<int>(widths[i]), row[i].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::vector<std::string> rule;
    for (size_t w : widths) rule.push_back(std::string(w, '-'));
    print_row(rule);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

// Least-squares slope of log(y) over log(x): the polynomial degree
// estimate for a scaling series. Ignores non-positive points.
inline double LogLogSlope(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
    if (xs[i] <= 0 || ys[i] <= 0) continue;
    double lx = std::log(xs[i]);
    double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  if (n < 2) return 0.0;
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

inline void Section(const char* title) {
  std::printf("\n=== %s ===\n\n", title);
}

// Minimal machine-readable results: a flat JSON object, written with
// stable key order so the checked-in BENCH_*.json artifacts diff cleanly
// between runs. Values are numbers, booleans, or strings (keys and
// string values here are bench-controlled; only quotes and backslashes
// are escaped).
class JsonWriter {
 public:
  void Add(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    fields_.emplace_back(key, buf);
  }
  // One unsigned overload: uint64_t and size_t are the same type on
  // LP64, so a second one would be an illegal redeclaration.
  void Add(const std::string& key, uint64_t v) {
    fields_.emplace_back(key, std::to_string(v));
  }
  void Add(const std::string& key, int v) {
    fields_.emplace_back(key, std::to_string(v));
  }
  void Add(const std::string& key, bool v) {
    fields_.emplace_back(key, v ? "true" : "false");
  }
  void Add(const std::string& key, const std::string& v) {
    fields_.emplace_back(key, "\"" + Escape(v) + "\"");
  }

  std::string ToString() const {
    std::string out = "{\n";
    for (size_t i = 0; i < fields_.size(); ++i) {
      out += "  \"" + Escape(fields_[i].first) + "\": " + fields_[i].second;
      if (i + 1 < fields_.size()) out += ",";
      out += "\n";
    }
    out += "}\n";
    return out;
  }

  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string text = ToString();
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    return std::fclose(f) == 0 && ok;
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace oodb::bench

#endif  // OODB_BENCH_BENCH_UTIL_H_
