
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ext/brute_force.cc" "src/ext/CMakeFiles/oodb_ext.dir/brute_force.cc.o" "gcc" "src/ext/CMakeFiles/oodb_ext.dir/brute_force.cc.o.d"
  "/root/repo/src/ext/chase.cc" "src/ext/CMakeFiles/oodb_ext.dir/chase.cc.o" "gcc" "src/ext/CMakeFiles/oodb_ext.dir/chase.cc.o.d"
  "/root/repo/src/ext/disjunction.cc" "src/ext/CMakeFiles/oodb_ext.dir/disjunction.cc.o" "gcc" "src/ext/CMakeFiles/oodb_ext.dir/disjunction.cc.o.d"
  "/root/repo/src/ext/families.cc" "src/ext/CMakeFiles/oodb_ext.dir/families.cc.o" "gcc" "src/ext/CMakeFiles/oodb_ext.dir/families.cc.o.d"
  "/root/repo/src/ext/xconcept.cc" "src/ext/CMakeFiles/oodb_ext.dir/xconcept.cc.o" "gcc" "src/ext/CMakeFiles/oodb_ext.dir/xconcept.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/oodb_base.dir/DependInfo.cmake"
  "/root/repo/build/src/ql/CMakeFiles/oodb_ql.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/oodb_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/oodb_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/calculus/CMakeFiles/oodb_calculus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
