
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dl/analyzer.cc" "src/dl/CMakeFiles/oodb_dl.dir/analyzer.cc.o" "gcc" "src/dl/CMakeFiles/oodb_dl.dir/analyzer.cc.o.d"
  "/root/repo/src/dl/lexer.cc" "src/dl/CMakeFiles/oodb_dl.dir/lexer.cc.o" "gcc" "src/dl/CMakeFiles/oodb_dl.dir/lexer.cc.o.d"
  "/root/repo/src/dl/parser.cc" "src/dl/CMakeFiles/oodb_dl.dir/parser.cc.o" "gcc" "src/dl/CMakeFiles/oodb_dl.dir/parser.cc.o.d"
  "/root/repo/src/dl/printer.cc" "src/dl/CMakeFiles/oodb_dl.dir/printer.cc.o" "gcc" "src/dl/CMakeFiles/oodb_dl.dir/printer.cc.o.d"
  "/root/repo/src/dl/translate.cc" "src/dl/CMakeFiles/oodb_dl.dir/translate.cc.o" "gcc" "src/dl/CMakeFiles/oodb_dl.dir/translate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/oodb_base.dir/DependInfo.cmake"
  "/root/repo/build/src/ql/CMakeFiles/oodb_ql.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/oodb_schema.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
