file(REMOVE_RECURSE
  "CMakeFiles/coref_views_test.dir/coref_views_test.cc.o"
  "CMakeFiles/coref_views_test.dir/coref_views_test.cc.o.d"
  "coref_views_test"
  "coref_views_test.pdb"
  "coref_views_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coref_views_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
