#include "cq/multihead.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "base/strings.h"

namespace oodb::cq {

namespace {

std::pair<int, uint32_t> TermKey(const CqTerm& t) {
  return {t.kind == CqTerm::Kind::kVar ? 0 : 1, t.name.id()};
}

// Builds the atoms of a query class into `out`, rooted at `root`.
// Labels of the *top-level* class bind to the vars in `label_vars`;
// labels of inlined query classes get fresh vars.
class Builder {
 public:
  Builder(const dl::Model& model, SymbolTable* symbols,
          MultiHeadQuery* out)
      : model_(model), symbols_(symbols), out_(out) {}

  Status Emit(Symbol query_class, const CqTerm& root, bool top_level) {
    const dl::ClassDef* def = model_.FindClass(query_class);
    if (def == nullptr) {
      return NotFoundError(StrCat("unknown class '",
                                  symbols_->Name(query_class), "'"));
    }
    if (!def->is_query) {
      out_->unary.push_back(UnaryAtom{query_class, root});
      return Status::Ok();
    }
    if (!def->IsStructural()) {
      return FailedPreconditionError(
          StrCat("query class '", symbols_->Name(query_class),
                 "' has a non-structural part or path variables"));
    }
    if (!visiting_.insert(query_class).second) {
      return FailedPreconditionError(
          StrCat("recursive reference to '",
                 symbols_->Name(query_class), "'"));
    }

    for (Symbol super : def->supers) {
      if (super == model_.object_class) continue;
      OODB_RETURN_IF_ERROR(Emit(super, root, /*top_level=*/false));
    }

    // Labels: endpoints of labeled paths; where-equalities identify them.
    std::map<Symbol, CqTerm> labels;
    for (const dl::ResolvedPath& path : def->derived) {
      OODB_ASSIGN_OR_RETURN(CqTerm end, Chain(path, root, Fresh()));
      if (path.label.valid()) labels.emplace(path.label, end);
    }
    for (const auto& [l, r] : def->where) {
      // Both paths end at the same object: emit equality by unification —
      // add a linking variable via two extra atoms is unnecessary; we
      // rewrite r's endpoint to l's after the fact.
      Rewrite(labels.at(r), labels.at(l));
      labels[r] = labels.at(l);
    }
    if (top_level) {
      for (const dl::ResolvedPath& path : def->derived) {
        if (!path.label.valid()) continue;
        out_->heads.push_back(labels.at(path.label));
        out_->head_names.push_back(path.label);
      }
    }
    visiting_.erase(query_class);
    return Status::Ok();
  }

 private:
  CqTerm Fresh() { return CqTerm::Var(symbols_->Fresh("w")); }

  // Emits the chain and returns the *effective* endpoint term (the given
  // `end` variable, or the constant a last-step filter rewrote it into).
  Result<CqTerm> Chain(const dl::ResolvedPath& path, const CqTerm& start,
                       const CqTerm& end) {
    CqTerm cur = start;
    for (size_t i = 0; i < path.steps.size(); ++i) {
      const dl::ResolvedStep& step = path.steps[i];
      CqTerm next = (i + 1 == path.steps.size()) ? end : Fresh();
      if (step.attr.inverted) {
        out_->binary.push_back(BinaryAtom{step.attr.prim, next, cur});
      } else {
        out_->binary.push_back(BinaryAtom{step.attr.prim, cur, next});
      }
      switch (step.filter.kind) {
        case dl::ResolvedFilter::Kind::kClass:
          if (step.filter.name != model_.object_class) {
            OODB_RETURN_IF_ERROR(
                Emit(step.filter.name, next, /*top_level=*/false));
          }
          break;
        case dl::ResolvedFilter::Kind::kConstant:
          Rewrite(next, CqTerm::Const(step.filter.name));
          if (next.kind == CqTerm::Kind::kVar) {
            next = CqTerm::Const(step.filter.name);
          }
          break;
        case dl::ResolvedFilter::Kind::kVariable:
          return FailedPreconditionError("path variables are unsupported");
      }
      cur = next;
    }
    return cur;
  }

  // Replaces every occurrence of `from` with `to` in the atoms and heads.
  void Rewrite(const CqTerm& from, const CqTerm& to) {
    auto fix = [&](CqTerm& t) {
      if (t == from) t = to;
    };
    for (UnaryAtom& a : out_->unary) fix(a.arg);
    for (BinaryAtom& a : out_->binary) {
      fix(a.lhs);
      fix(a.rhs);
    }
    for (CqTerm& h : out_->heads) fix(h);
  }

  const dl::Model& model_;
  SymbolTable* symbols_;
  MultiHeadQuery* out_;
  std::unordered_set<Symbol> visiting_;
};

}  // namespace

std::string MultiHeadQuery::ToString(const SymbolTable& symbols) const {
  auto term = [&](const CqTerm& t) { return symbols.Name(t.name); };
  std::vector<std::string> head_strs;
  for (const CqTerm& h : heads) head_strs.push_back(term(h));
  std::vector<std::string> atoms;
  for (const UnaryAtom& a : unary) {
    atoms.push_back(StrCat(symbols.Name(a.pred), "(", term(a.arg), ")"));
  }
  for (const BinaryAtom& a : binary) {
    atoms.push_back(StrCat(symbols.Name(a.pred), "(", term(a.lhs), ", ",
                           term(a.rhs), ")"));
  }
  return StrCat("q(", StrJoin(head_strs, ", "), ") :- ",
                inconsistent ? "⊥" : StrJoin(atoms, ", "));
}

Result<MultiHeadQuery> QueryClassToMultiHeadCq(const dl::Model& model,
                                               Symbol query_class,
                                               SymbolTable* symbols) {
  MultiHeadQuery q;
  CqTerm self = CqTerm::Var(symbols->Fresh("w"));
  q.heads.push_back(self);
  q.head_names.push_back(symbols->Intern("this"));
  Builder builder(model, symbols, &q);
  OODB_RETURN_IF_ERROR(builder.Emit(query_class, self, /*top_level=*/true));
  return q;
}

namespace {

// Frozen database of q1 plus a pinned homomorphism search for q2 —
// the multi-pin generalization of CqContained.
struct Frozen {
  std::map<std::pair<int, uint32_t>, int> elem_of_term;
  std::unordered_map<uint32_t, int> elem_of_const;
  std::set<std::pair<uint32_t, int>> unary_facts;
  std::set<std::tuple<uint32_t, int, int>> binary_facts;
  int num_elements = 0;

  int Elem(const CqTerm& t) {
    auto [it, inserted] = elem_of_term.emplace(TermKey(t), num_elements);
    if (inserted) {
      ++num_elements;
      if (t.kind == CqTerm::Kind::kConst) {
        elem_of_const[t.name.id()] = it->second;
      }
    }
    return it->second;
  }
};

Frozen Freeze(const MultiHeadQuery& q) {
  Frozen db;
  for (const CqTerm& h : q.heads) db.Elem(h);
  for (const UnaryAtom& a : q.unary) {
    db.unary_facts.insert({a.pred.id(), db.Elem(a.arg)});
  }
  for (const BinaryAtom& a : q.binary) {
    db.binary_facts.insert({a.pred.id(), db.Elem(a.lhs), db.Elem(a.rhs)});
  }
  return db;
}

class PinnedHom {
 public:
  PinnedHom(const MultiHeadQuery& q2, const Frozen& db)
      : q2_(q2), db_(db) {}

  // pins: q2 head index → element of db.
  bool Exists(const std::vector<int>& pins) {
    assignment_.clear();
    for (size_t i = 0; i < q2_.heads.size(); ++i) {
      const CqTerm& h = q2_.heads[i];
      if (h.kind == CqTerm::Kind::kConst) {
        auto it = db_.elem_of_const.find(h.name.id());
        if (it == db_.elem_of_const.end() || it->second != pins[i]) {
          return false;
        }
        continue;
      }
      auto [it, inserted] = assignment_.emplace(h.name.id(), pins[i]);
      if (!inserted && it->second != pins[i]) return false;  // head reuse
    }
    vars_.clear();
    CollectVars();
    return Try(0);
  }

 private:
  void CollectVars() {
    auto add = [&](const CqTerm& t) {
      if (t.kind != CqTerm::Kind::kVar) return;
      if (assignment_.count(t.name.id()) > 0) return;
      if (std::find(vars_.begin(), vars_.end(), t.name) == vars_.end()) {
        vars_.push_back(t.name);
      }
    };
    for (const UnaryAtom& a : q2_.unary) add(a.arg);
    for (const BinaryAtom& a : q2_.binary) {
      add(a.lhs);
      add(a.rhs);
    }
  }

  int Resolve(const CqTerm& t, bool& unassigned) const {
    if (t.kind == CqTerm::Kind::kConst) {
      auto it = db_.elem_of_const.find(t.name.id());
      return it == db_.elem_of_const.end() ? -1 : it->second;
    }
    auto it = assignment_.find(t.name.id());
    if (it == assignment_.end()) {
      unassigned = true;
      return -1;
    }
    return it->second;
  }

  bool Consistent() const {
    for (const UnaryAtom& a : q2_.unary) {
      bool unassigned = false;
      int e = Resolve(a.arg, unassigned);
      if (unassigned) continue;
      if (e < 0 || db_.unary_facts.count({a.pred.id(), e}) == 0) {
        return false;
      }
    }
    for (const BinaryAtom& a : q2_.binary) {
      bool unassigned = false;
      int l = Resolve(a.lhs, unassigned);
      int r = Resolve(a.rhs, unassigned);
      if (unassigned) continue;
      if (l < 0 || r < 0 ||
          db_.binary_facts.count({a.pred.id(), l, r}) == 0) {
        return false;
      }
    }
    return true;
  }

  bool Try(size_t i) {
    if (!Consistent()) return false;
    if (i == vars_.size()) return true;
    for (int e = 0; e < db_.num_elements; ++e) {
      assignment_[vars_[i].id()] = e;
      if (Try(i + 1)) return true;
    }
    assignment_.erase(vars_[i].id());
    return false;
  }

  const MultiHeadQuery& q2_;
  const Frozen& db_;
  std::vector<Symbol> vars_;
  std::unordered_map<uint32_t, int> assignment_;
};

}  // namespace

bool MultiHeadContained(const MultiHeadQuery& q1, const MultiHeadQuery& q2) {
  if (q1.heads.size() != q2.heads.size()) return false;
  if (q1.inconsistent) return true;
  if (q2.inconsistent) return false;
  Frozen db = Freeze(q1);
  std::vector<int> pins;
  for (const CqTerm& h : q1.heads) pins.push_back(db.Elem(h));
  PinnedHom hom(q2, db);
  return hom.Exists(pins);
}

std::optional<std::vector<size_t>> ContainedUnderPermutation(
    const MultiHeadQuery& q1, const MultiHeadQuery& q2) {
  if (q1.heads.size() != q2.heads.size()) return std::nullopt;
  const size_t n = q1.heads.size();
  // Permute label positions 1..n-1; position 0 (the answer object) is
  // structural identity and stays fixed.
  std::vector<size_t> label_positions;
  for (size_t i = 1; i < n; ++i) label_positions.push_back(i);
  Frozen db = Freeze(q1);
  std::vector<int> base_pins;
  for (const CqTerm& h : q1.heads) base_pins.push_back(db.Elem(h));
  PinnedHom hom(q2, db);
  do {
    // π maps q2 head position → q1 head position.
    std::vector<size_t> pi(n);
    pi[0] = 0;
    for (size_t i = 1; i < n; ++i) pi[i] = label_positions[i - 1];
    std::vector<int> pins(n);
    for (size_t i = 0; i < n; ++i) pins[i] = base_pins[pi[i]];
    if (q1.inconsistent || hom.Exists(pins)) return pi;
  } while (std::next_permutation(label_positions.begin(),
                                 label_positions.end()));
  return std::nullopt;
}

}  // namespace oodb::cq
