
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/calculus/canonical.cc" "src/calculus/CMakeFiles/oodb_calculus.dir/canonical.cc.o" "gcc" "src/calculus/CMakeFiles/oodb_calculus.dir/canonical.cc.o.d"
  "/root/repo/src/calculus/constraint.cc" "src/calculus/CMakeFiles/oodb_calculus.dir/constraint.cc.o" "gcc" "src/calculus/CMakeFiles/oodb_calculus.dir/constraint.cc.o.d"
  "/root/repo/src/calculus/engine.cc" "src/calculus/CMakeFiles/oodb_calculus.dir/engine.cc.o" "gcc" "src/calculus/CMakeFiles/oodb_calculus.dir/engine.cc.o.d"
  "/root/repo/src/calculus/explain.cc" "src/calculus/CMakeFiles/oodb_calculus.dir/explain.cc.o" "gcc" "src/calculus/CMakeFiles/oodb_calculus.dir/explain.cc.o.d"
  "/root/repo/src/calculus/services.cc" "src/calculus/CMakeFiles/oodb_calculus.dir/services.cc.o" "gcc" "src/calculus/CMakeFiles/oodb_calculus.dir/services.cc.o.d"
  "/root/repo/src/calculus/subsumption.cc" "src/calculus/CMakeFiles/oodb_calculus.dir/subsumption.cc.o" "gcc" "src/calculus/CMakeFiles/oodb_calculus.dir/subsumption.cc.o.d"
  "/root/repo/src/calculus/trace.cc" "src/calculus/CMakeFiles/oodb_calculus.dir/trace.cc.o" "gcc" "src/calculus/CMakeFiles/oodb_calculus.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/oodb_base.dir/DependInfo.cmake"
  "/root/repo/build/src/ql/CMakeFiles/oodb_ql.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/oodb_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/oodb_interp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
