file(REMOVE_RECURSE
  "liboodb_schema.a"
)
