// MUST NOT COMPILE under -Werror=thread-safety: acquiring a mutex that
// is already held (self-deadlock).
#include "base/sync.h"

namespace {

oodb::base::Mutex mu;
int value GUARDED_BY(mu) = 0;

int DoubleAcquire() {
  oodb::base::MutexLock outer(&mu);
  oodb::base::MutexLock inner(&mu);  // BAD: mu is already held
  return value;
}

}  // namespace

int main() { return DoubleAcquire(); }
