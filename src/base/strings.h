// Small string utilities in the spirit of absl/strings, enough for this
// project: StrCat, StrJoin, simple predicates.
#ifndef OODB_BASE_STRINGS_H_
#define OODB_BASE_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace oodb {

namespace internal_strings {

inline void AppendOne(std::ostringstream& os, std::string_view v) { os << v; }
inline void AppendOne(std::ostringstream& os, const std::string& v) {
  os << v;
}
inline void AppendOne(std::ostringstream& os, const char* v) { os << v; }
inline void AppendOne(std::ostringstream& os, char v) { os << v; }
inline void AppendOne(std::ostringstream& os, bool v) {
  os << (v ? "true" : "false");
}
template <typename T>
void AppendOne(std::ostringstream& os, const T& v) {
  os << v;
}

}  // namespace internal_strings

// Concatenates the printable arguments into one string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (internal_strings::AppendOne(os, args), ...);
  return os.str();
}

// Joins the elements of `parts` with `sep`. Elements must be streamable or
// convertible to string_view.
template <typename Container>
std::string StrJoin(const Container& parts, std::string_view sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) os << sep;
    first = false;
    internal_strings::AppendOne(os, p);
  }
  return os.str();
}

// Joins after applying `fn` to each element.
template <typename Container, typename Fn>
std::string StrJoinMapped(const Container& parts, std::string_view sep,
                          Fn&& fn) {
  std::ostringstream os;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) os << sep;
    first = false;
    internal_strings::AppendOne(os, fn(p));
  }
  return os.str();
}

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Splits on a single character, keeping empty pieces.
std::vector<std::string_view> StrSplit(std::string_view s, char sep);

}  // namespace oodb

#endif  // OODB_BASE_STRINGS_H_
