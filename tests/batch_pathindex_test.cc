// Tests for batch subsumption (one completion, many views) and the
// related-work path-index substrate.
#include <gtest/gtest.h>

#include <memory>

#include "base/rng.h"
#include "calculus/subsumption.h"
#include "db/concept_eval.h"
#include "db/database.h"
#include "db/instance.h"
#include "db/path_index.h"
#include "dl/analyzer.h"
#include "dl_fixture.h"
#include "gen/generators.h"
#include "ql/print.h"

namespace oodb {
namespace {

TEST(BatchSubsumption, MatchesIndividualChecks) {
  Rng rng(54321);
  for (int round = 0; round < 60; ++round) {
    SymbolTable symbols;
    ql::TermFactory f(&symbols);
    schema::Schema sigma(&f);
    gen::GeneratedSchema sig = gen::GenerateSchema(&sigma, rng);
    ql::ConceptId c = gen::GenerateConcept(sig, &f, rng);
    std::vector<ql::ConceptId> ds;
    for (int i = 0; i < 5; ++i) {
      // Mix of weakenings (subsumed) and independent concepts (mostly not).
      ds.push_back(i % 2 == 0
                       ? gen::WeakenConcept(sigma, &f, c, rng, 2)
                       : gen::GenerateConcept(sig, &f, rng));
    }
    calculus::SubsumptionChecker checker(sigma);
    auto batch = checker.SubsumesBatch(c, ds);
    ASSERT_TRUE(batch.ok()) << batch.status();
    for (size_t i = 0; i < ds.size(); ++i) {
      auto single = checker.Subsumes(c, ds[i]);
      ASSERT_TRUE(single.ok());
      EXPECT_EQ((*batch)[i], *single)
          << ql::ConceptToString(f, c) << "  vs  "
          << ql::ConceptToString(f, ds[i]);
    }
  }
}

TEST(BatchSubsumption, EmptyBatchSucceeds) {
  SymbolTable symbols;
  ql::TermFactory f(&symbols);
  schema::Schema sigma(&f);
  calculus::SubsumptionChecker checker(sigma);
  auto batch = checker.SubsumesBatch(f.Primitive("A"), {});
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
}

TEST(BatchSubsumption, DuplicateGoalsAreFine) {
  SymbolTable symbols;
  ql::TermFactory f(&symbols);
  schema::Schema sigma(&f);
  calculus::SubsumptionChecker checker(sigma);
  ql::ConceptId a = f.Primitive("A");
  auto batch = checker.SubsumesBatch(a, {a, f.Top(), a});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(*batch, (std::vector<bool>{true, true, true}));
}

// --- Path index ---------------------------------------------------------------

struct IndexFx {
  SymbolTable symbols;
  std::unique_ptr<ql::TermFactory> terms;
  std::unique_ptr<dl::Model> model;
  std::unique_ptr<db::Database> database;
  ql::PathId chain = ql::kEmptyPath;

  IndexFx() {
    terms = std::make_unique<ql::TermFactory>(&symbols);
    auto m = dl::ParseAndAnalyze(testing::kMedicalDlSource, &symbols);
    EXPECT_TRUE(m.ok()) << m.status();
    model = std::make_unique<dl::Model>(std::move(m).value());
    database = std::make_unique<db::Database>(*model, &symbols);
    ASSERT_OK_LOAD();
    // (consults: Doctor)(skilled_in: ⊤)
    chain = terms->MakePath(
        {{ql::Attr{symbols.Intern("consults"), false},
          terms->Primitive("Doctor")},
         {ql::Attr{symbols.Intern("skilled_in"), false}, terms->Top()}});
  }

  void ASSERT_OK_LOAD() {
    auto stats = db::LoadInstance(R"(
      Object flu in Disease with
      end flu
      Object cough in Disease with
      end cough
      Object alice in Doctor, Female with
        skilled_in: flu
      end alice
      Object bob in Patient, Male with
        suffers: flu
        consults: alice
      end bob
      Object carol in Patient, Female with
        suffers: cough
        consults: alice
      end carol
    )",
                                  database.get());
    ASSERT_TRUE(stats.ok()) << stats.status();
  }

  db::ObjectId Obj(const char* name) {
    return *database->FindObject(symbols.Find(name));
  }
};

TEST(PathIndex, EndpointsMatchDirectTraversal) {
  IndexFx fx;
  db::PathIndex index(*fx.database, *fx.terms, fx.chain);
  for (db::ObjectId o = 0; o < fx.database->num_objects(); ++o) {
    EXPECT_EQ(index.Endpoints(o),
              db::ConceptPathReach(*fx.database, *fx.terms, fx.chain, o));
  }
}

TEST(PathIndex, SourcesAreTheExistsExtent) {
  IndexFx fx;
  db::PathIndex index(*fx.database, *fx.terms, fx.chain);
  std::vector<db::ObjectId> expected = {fx.Obj("bob"), fx.Obj("carol")};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(index.Sources(), expected);
}

TEST(PathIndex, RefreshTracksMutations) {
  IndexFx fx;
  db::PathIndex index(*fx.database, *fx.terms, fx.chain);
  EXPECT_FALSE(index.stale());
  size_t before = index.Sources().size();

  // A new patient consults alice.
  auto dave = *fx.database->CreateObject("dave");
  ASSERT_TRUE(fx.database->AddToClass(dave, fx.symbols.Find("Patient")).ok());
  ASSERT_TRUE(fx.database
                  ->AddAttr(dave, fx.symbols.Find("consults"),
                            fx.Obj("alice"))
                  .ok());
  EXPECT_TRUE(index.stale());
  index.Refresh();
  EXPECT_FALSE(index.stale());
  EXPECT_EQ(index.Sources().size(), before + 1);

  // Refresh with no changes is a no-op.
  size_t refreshes = index.refresh_count();
  index.Refresh();
  EXPECT_EQ(index.refresh_count(), refreshes);
}

TEST(PathIndex, LoopSourcesMatchAgreements) {
  IndexFx fx;
  // The loop (consults:⊤)(consults⁻¹:⊤): patients sharing a doctor with
  // themselves — everyone who consults anyone.
  ql::PathId loop = fx.terms->MakePath(
      {{ql::Attr{fx.symbols.Intern("consults"), false}, fx.terms->Top()},
       {ql::Attr{fx.symbols.Intern("consults"), true}, fx.terms->Top()}});
  db::PathIndex index(*fx.database, *fx.terms, loop);
  std::vector<db::ObjectId> loops = index.LoopSources();
  ql::ConceptId agree = fx.terms->Agree(loop);
  std::vector<db::ObjectId> expected;
  for (db::ObjectId o = 0; o < fx.database->num_objects(); ++o) {
    if (db::ConceptHolds(*fx.database, *fx.terms, agree, o)) {
      expected.push_back(o);
    }
  }
  EXPECT_EQ(loops, expected);
  EXPECT_EQ(loops.size(), 2u);  // bob and carol (alice consults nobody)
}

TEST(PathIndex, RandomEquivalenceProperty) {
  Rng rng(777);
  IndexFx fx;
  // Random extra edges, then random paths: index == traversal, always.
  std::vector<Symbol> attrs = {fx.symbols.Find("consults"),
                               fx.symbols.Find("suffers"),
                               fx.symbols.Find("skilled_in")};
  for (int i = 0; i < 10; ++i) {
    db::ObjectId s =
        static_cast<db::ObjectId>(rng.Index(fx.database->num_objects()));
    db::ObjectId t =
        static_cast<db::ObjectId>(rng.Index(fx.database->num_objects()));
    (void)fx.database->AddAttr(s, rng.Pick(attrs), t);
  }
  for (int round = 0; round < 20; ++round) {
    size_t len = 1 + rng.Index(3);
    std::vector<ql::Restriction> steps;
    for (size_t i = 0; i < len; ++i) {
      steps.push_back(ql::Restriction{
          ql::Attr{rng.Pick(attrs), rng.Bernoulli(0.3)}, fx.terms->Top()});
    }
    ql::PathId p = fx.terms->MakePath(std::move(steps));
    db::PathIndex index(*fx.database, *fx.terms, p);
    for (db::ObjectId o = 0; o < fx.database->num_objects(); ++o) {
      ASSERT_EQ(index.Endpoints(o),
                db::ConceptPathReach(*fx.database, *fx.terms, p, o));
    }
  }
}

}  // namespace
}  // namespace oodb
